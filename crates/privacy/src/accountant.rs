//! Sequential-composition privacy accounting.

use crate::{PrivacyError, PrivacyGuarantee};
use serde::{Deserialize, Serialize};

/// A single privacy expenditure recorded by the accountant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrivacySpend {
    /// Guarantee consumed by the event.
    pub guarantee: PrivacyGuarantee,
    /// Free-form label (e.g. `"report"`), used for reporting.
    pub label: String,
}

/// Tracks the cumulative (ε, δ) spent by one agent across reports under
/// classic sequential composition.
///
/// This is the simpler of the crate's two accounting backends: an agent
/// reporting `r` tuples at ε each is charged exactly `rε` (Σεᵢ, Σδᵢ), with
/// an optional budget so simulations can refuse to over-report. The
/// companion [`crate::ZcdpAccountant`] composes the same spend sequence in
/// ρ-zCDP, which is strictly tighter over long horizons (`O(√k)·ε` instead
/// of `O(k)·ε`) but needs a target δ at query time; this accountant's
/// totals are exact, deterministic, and backend-independent, so existing
/// ledgers built on it are unchanged by the zCDP addition.
///
/// ```
/// use p2b_privacy::{PrivacyAccountant, PrivacyGuarantee};
///
/// # fn main() -> Result<(), p2b_privacy::PrivacyError> {
/// let per_report = PrivacyGuarantee::pure(0.693)?;
/// let mut accountant = PrivacyAccountant::with_budget(PrivacyGuarantee::pure(2.0)?);
/// accountant.spend(per_report, "report")?;
/// accountant.spend(per_report, "report")?;
/// assert!(accountant.spend(per_report, "report").is_err()); // would exceed 2.0
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrivacyAccountant {
    spends: Vec<PrivacySpend>,
    total: PrivacyGuarantee,
    budget: Option<PrivacyGuarantee>,
}

impl Default for PrivacyAccountant {
    fn default() -> Self {
        Self::new()
    }
}

impl PrivacyAccountant {
    /// Creates an unbounded accountant (no budget enforcement).
    #[must_use]
    pub fn new() -> Self {
        Self {
            spends: Vec::new(),
            total: PrivacyGuarantee::zero(),
            budget: None,
        }
    }

    /// Creates an accountant that refuses expenditures beyond `budget`.
    #[must_use]
    pub fn with_budget(budget: PrivacyGuarantee) -> Self {
        Self {
            spends: Vec::new(),
            total: PrivacyGuarantee::zero(),
            budget: Some(budget),
        }
    }

    /// Records a privacy expenditure.
    ///
    /// # Errors
    ///
    /// Returns [`PrivacyError::BudgetExceeded`] when a budget is configured
    /// and the composed total would exceed it (in ε or δ). The expenditure is
    /// not recorded in that case.
    pub fn spend(
        &mut self,
        guarantee: PrivacyGuarantee,
        label: impl Into<String>,
    ) -> Result<(), PrivacyError> {
        let proposed = self.total.compose(&guarantee);
        if let Some(budget) = &self.budget {
            if !proposed.is_at_least_as_strong_as(budget) {
                return Err(PrivacyError::BudgetExceeded {
                    budget: budget.epsilon(),
                    requested: proposed.epsilon(),
                });
            }
        }
        self.total = proposed;
        self.spends.push(PrivacySpend {
            guarantee,
            label: label.into(),
        });
        Ok(())
    }

    /// The total (ε, δ) spent so far under sequential composition.
    #[must_use]
    pub fn total(&self) -> PrivacyGuarantee {
        self.total
    }

    /// Number of recorded expenditures.
    #[must_use]
    pub fn count(&self) -> usize {
        self.spends.len()
    }

    /// Iterates over the recorded expenditures in order.
    pub fn iter(&self) -> std::slice::Iter<'_, PrivacySpend> {
        self.spends.iter()
    }

    /// The remaining ε before the budget is exhausted (`None` when unbounded).
    #[must_use]
    pub fn remaining_epsilon(&self) -> Option<f64> {
        self.budget
            .as_ref()
            .map(|b| (b.epsilon() - self.total.epsilon()).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(eps: f64) -> PrivacyGuarantee {
        PrivacyGuarantee::pure(eps).unwrap()
    }

    #[test]
    fn unbounded_accountant_accumulates_epsilon() {
        let mut acc = PrivacyAccountant::new();
        for _ in 0..4 {
            acc.spend(g(0.5), "report").unwrap();
        }
        assert_eq!(acc.count(), 4);
        assert!((acc.total().epsilon() - 2.0).abs() < 1e-12);
        assert_eq!(acc.remaining_epsilon(), None);
    }

    #[test]
    fn budget_is_enforced_and_rejected_spends_are_not_recorded() {
        let mut acc = PrivacyAccountant::with_budget(g(1.0));
        acc.spend(g(0.6), "a").unwrap();
        let err = acc.spend(g(0.6), "b");
        assert!(matches!(err, Err(PrivacyError::BudgetExceeded { .. })));
        assert_eq!(acc.count(), 1);
        assert!((acc.total().epsilon() - 0.6).abs() < 1e-12);
        assert!((acc.remaining_epsilon().unwrap() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn delta_budget_is_also_enforced() {
        let budget = PrivacyGuarantee::new(10.0, 1e-6).unwrap();
        let mut acc = PrivacyAccountant::with_budget(budget);
        let leaky = PrivacyGuarantee::new(0.1, 1e-6).unwrap();
        acc.spend(leaky, "a").unwrap();
        assert!(acc.spend(leaky, "b").is_err());
    }

    #[test]
    fn iteration_preserves_labels_in_order() {
        let mut acc = PrivacyAccountant::new();
        acc.spend(g(0.1), "first").unwrap();
        acc.spend(g(0.2), "second").unwrap();
        let labels: Vec<&str> = acc.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, vec!["first", "second"]);
    }

    #[test]
    fn default_is_unbounded_and_empty() {
        let acc = PrivacyAccountant::default();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.total().epsilon(), 0.0);
    }
}
