//! Crowd-blending privacy (Gehrke et al. 2012).

use crate::PrivacyError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

/// An `(l, ε̄)`-crowd-blending privacy parameterization.
///
/// Definition 2 of the paper: an encoding mechanism is `(l, ε̄)`-crowd-blending
/// private if every released encoded value either blends with at least `l − 1`
/// other released values (indistinguishably when ε̄ = 0) or is suppressed.
///
/// P2B's deterministic encoder releases *identical* codes for every member of
/// a crowd, so ε̄ = 0; the shuffler's frequency threshold enforces the crowd
/// size `l`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrowdBlending {
    crowd_size: u64,
    epsilon_bar: f64,
}

impl CrowdBlending {
    /// Creates an `(l, ε̄)`-crowd-blending parameterization.
    ///
    /// # Errors
    ///
    /// Returns [`PrivacyError::InvalidParameter`] when `l == 0` or ε̄ is
    /// negative or non-finite.
    pub fn new(crowd_size: u64, epsilon_bar: f64) -> Result<Self, PrivacyError> {
        if crowd_size == 0 {
            return Err(PrivacyError::InvalidParameter {
                name: "crowd_size",
                message: "must be at least 1".to_owned(),
            });
        }
        if !epsilon_bar.is_finite() || epsilon_bar < 0.0 {
            return Err(PrivacyError::InvalidParameter {
                name: "epsilon_bar",
                message: format!("must be a finite non-negative number, got {epsilon_bar}"),
            });
        }
        Ok(Self {
            crowd_size,
            epsilon_bar,
        })
    }

    /// The P2B encoder's parameterization: exact blending (ε̄ = 0) with the
    /// given crowd size.
    ///
    /// # Errors
    ///
    /// Returns [`PrivacyError::InvalidParameter`] when `crowd_size == 0`.
    pub fn exact(crowd_size: u64) -> Result<Self, PrivacyError> {
        Self::new(crowd_size, 0.0)
    }

    /// The crowd size `l`.
    #[must_use]
    pub fn crowd_size(&self) -> u64 {
        self.crowd_size
    }

    /// The in-crowd distinguishability ε̄.
    #[must_use]
    pub fn epsilon_bar(&self) -> f64 {
        self.epsilon_bar
    }

    /// The crowd-blending parameter achieved by the *optimal* encoder of
    /// Section 4: `U` participating users spread uniformly over `k` codes
    /// give `l = U / k` (integer division; zero when `U < k`).
    ///
    /// # Errors
    ///
    /// Returns [`PrivacyError::InvalidParameter`] when `num_codes == 0` or
    /// the resulting crowd is empty.
    pub fn from_optimal_encoder(num_users: u64, num_codes: u64) -> Result<Self, PrivacyError> {
        if num_codes == 0 {
            return Err(PrivacyError::InvalidParameter {
                name: "num_codes",
                message: "must be at least 1".to_owned(),
            });
        }
        Self::exact(num_users / num_codes)
    }

    /// Verifies that a batch of released codes actually satisfies the crowd
    /// size: every distinct released value must occur at least `l` times.
    ///
    /// This is the empirical check used in tests and in the shuffler's
    /// post-conditions; it returns the number of distinct codes that violate
    /// the requirement (0 means the batch is compliant).
    #[must_use]
    pub fn count_violations<T: Eq + Hash>(&self, released: &[T]) -> usize {
        let mut counts: HashMap<&T, u64> = HashMap::new();
        for value in released {
            *counts.entry(value).or_insert(0) += 1;
        }
        counts
            .values()
            .filter(|&&count| count < self.crowd_size)
            .count()
    }

    /// Returns `true` if the released batch satisfies `(l, ·)`-crowd-blending
    /// empirically (every released value occurs at least `l` times).
    #[must_use]
    pub fn is_satisfied_by<T: Eq + Hash>(&self, released: &[T]) -> bool {
        self.count_violations(released) == 0
    }
}

impl fmt::Display for CrowdBlending {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}, {:.3})-crowd-blending",
            self.crowd_size, self.epsilon_bar
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_parameters() {
        assert!(CrowdBlending::new(0, 0.0).is_err());
        assert!(CrowdBlending::new(5, -0.1).is_err());
        assert!(CrowdBlending::new(5, f64::NAN).is_err());
        assert!(CrowdBlending::exact(5).is_ok());
    }

    #[test]
    fn optimal_encoder_crowd_size_is_users_over_codes() {
        let cb = CrowdBlending::from_optimal_encoder(1000, 32).unwrap();
        assert_eq!(cb.crowd_size(), 31);
        assert_eq!(cb.epsilon_bar(), 0.0);
        // Fewer users than codes: the crowd is empty, which must be an error.
        assert!(CrowdBlending::from_optimal_encoder(10, 32).is_err());
        assert!(CrowdBlending::from_optimal_encoder(10, 0).is_err());
    }

    #[test]
    fn empirical_check_counts_small_crowds() {
        let cb = CrowdBlending::exact(3).unwrap();
        let released = vec![1, 1, 1, 2, 2, 3, 3, 3, 3];
        // Code 2 appears only twice => one violation.
        assert_eq!(cb.count_violations(&released), 1);
        assert!(!cb.is_satisfied_by(&released));

        let compliant = vec![1, 1, 1, 3, 3, 3, 3];
        assert!(cb.is_satisfied_by(&compliant));
    }

    #[test]
    fn empty_release_is_trivially_compliant() {
        let cb = CrowdBlending::exact(10).unwrap();
        assert!(cb.is_satisfied_by::<u32>(&[]));
    }

    #[test]
    fn display_mentions_both_parameters() {
        let cb = CrowdBlending::new(7, 0.5).unwrap();
        let s = cb.to_string();
        assert!(s.contains('7'));
        assert!(s.contains("0.500"));
    }
}
