//! Error type for the privacy-analysis crate.

use std::error::Error;
use std::fmt;

/// Error returned by privacy-parameter constructors and computations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PrivacyError {
    /// A probability was outside its valid range.
    InvalidProbability {
        /// Name of the offending parameter.
        name: &'static str,
        /// Value that was rejected.
        value: f64,
    },
    /// A privacy parameter (ε, δ, l, Ω, …) was outside its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Description of the violated constraint.
        message: String,
    },
    /// A privacy budget would be exceeded by the requested operation.
    BudgetExceeded {
        /// Budget available before the operation.
        budget: f64,
        /// Privacy cost that was requested.
        requested: f64,
    },
}

impl fmt::Display for PrivacyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrivacyError::InvalidProbability { name, value } => {
                write!(f, "invalid probability {value} for parameter `{name}`")
            }
            PrivacyError::InvalidParameter { name, message } => {
                write!(f, "invalid privacy parameter `{name}`: {message}")
            }
            PrivacyError::BudgetExceeded { budget, requested } => write!(
                f,
                "privacy budget exceeded: {requested} requested with only {budget} remaining"
            ),
        }
    }
}

impl Error for PrivacyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = PrivacyError::InvalidProbability {
            name: "p",
            value: 1.5,
        };
        assert!(e.to_string().contains("1.5"));
        let e = PrivacyError::BudgetExceeded {
            budget: 1.0,
            requested: 2.0,
        };
        assert!(e.to_string().contains('2'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<PrivacyError>();
    }
}
