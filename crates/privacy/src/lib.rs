//! Differential-privacy analysis for Privacy-Preserving Bandits.
//!
//! P2B's privacy argument (Section 4 of the paper) combines two ingredients:
//!
//! 1. **Crowd-blending privacy** (Gehrke et al. 2012): the encoder maps every
//!    released context to a code shared by at least `l − 1` other released
//!    contexts, with ε̄ = 0 because all members of a crowd release *exactly*
//!    the same value ([`CrowdBlending`]).
//! 2. **Pre-sampling**: each agent participates with probability `p`
//!    ([`Participation`]). Pre-sampling followed by a crowd-blending
//!    mechanism yields zero-knowledge and hence (ε, δ)-differential privacy
//!    with
//!    `ε = ln(p·(2−p)/(1−p)·e^ε̄ + (1−p))` and `δ = e^(−Ω·l·(1−p)²)`
//!    ([`amplified_epsilon`], [`amplified_delta`]).
//!
//! The crate also provides a [`PrivacyAccountant`] implementing sequential
//! composition (an agent reporting `r` tuples spends `r·ε`), an
//! [`AmplificationLedger`] that records the `(ε, δ)` pair achieved by every
//! batch a batched shuffler releases, and a [`RandomizedResponse`] local-DP
//! baseline so P2B's trust model can be compared against RAPPOR-style
//! randomization.
//!
//! Two additions support the central-DP baseline the paper compares against:
//! a [`TreeAggregator`] releasing running sums through the binary mechanism
//! (Gaussian noise on O(log T) dyadic partial sums per prefix, Dwork et al.
//! 2010 / Chan–Shi–Song 2011), and a [`ZcdpAccountant`] composing privacy
//! loss in ρ-zCDP with conversion to (ε, δ) at query time — the tight
//! `O(√k)` alternative to sequential composition for long horizons.
//!
//! A third trust model rides on the same leaf stream: the secure-aggregation
//! regime ([`SecretSharer`], [`encode_fixed`]/[`decode_fixed`],
//! [`recombine`]) additively secret-shares fixed-point statistic
//! contributions across independent aggregator shards so no single party
//! ever sees a plaintext contribution — an architectural (who-sees-what)
//! guarantee rather than a DP one; see the [`SecretSharer`] docs for the
//! exact construction and its caveats.
//!
//! # Example
//!
//! ```
//! use p2b_privacy::{amplified_epsilon, Participation};
//!
//! # fn main() -> Result<(), p2b_privacy::PrivacyError> {
//! let p = Participation::new(0.5)?;
//! let eps = amplified_epsilon(p, 0.0)?;
//! assert!((eps - std::f64::consts::LN_2).abs() < 1e-12); // ≈ 0.693
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod accountant;
mod amplification;
mod batch;
mod crowd_blending;
mod definitions;
mod error;
mod randomized_response;
mod secret_share;
mod tree;
mod zcdp;

pub use accountant::{PrivacyAccountant, PrivacySpend};
pub use amplification::{
    amplified_delta, amplified_epsilon, epsilon_sweep, participation_for_epsilon, EpsilonPoint,
};
pub use batch::{AmplificationLedger, BatchAmplification};
pub use crowd_blending::CrowdBlending;
pub use definitions::{Participation, PrivacyGuarantee};
pub use error::PrivacyError;
pub use randomized_response::RandomizedResponse;
pub use secret_share::{
    decode_fixed, encode_fixed, recombine, SecretSharer, FIXED_POINT_FRACTIONAL_BITS,
    FIXED_POINT_MAX_ABS, FIXED_POINT_SCALE,
};
pub use tree::{prefix_nodes, TreeAggregator, TreeConfig, TreeNode};
pub use zcdp::{
    compare_composition, pure_dp_to_rho, rho_to_epsilon, CompositionComparison, ZcdpAccountant,
    ZcdpSpend,
};
