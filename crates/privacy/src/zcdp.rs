//! Zero-concentrated differential privacy (ρ-zCDP) accounting.
//!
//! Bun & Steinke 2016: a mechanism is ρ-zCDP when its Rényi divergence of
//! order α is bounded by ρα for every α > 1. Two facts make ρ the right
//! currency for long-horizon bandit deployments (Azize & Basu, *Concentrated
//! Differential Privacy for Bandits*):
//!
//! * **Composition is additive and tight**: `k` mechanisms of `ρᵢ`-zCDP
//!   compose to `(Σρᵢ)`-zCDP — no union-bound slack.
//! * **Conversions are two-way**: pure ε-DP implies `(ε²/2)`-zCDP, and
//!   ρ-zCDP implies `(ρ + 2√(ρ·ln(1/δ)), δ)`-DP for every δ ∈ (0, 1).
//!
//! Over `k` repetitions of an ε-DP mechanism, sequential composition quotes
//! `kε` while the zCDP route quotes `kε²/2 + ε√(2k·ln(1/δ))` — `O(√k)·ε`
//! instead of `O(k)·ε`, which is why the shuffle regime's per-batch
//! amplification ledger composes much more tightly over horizons of
//! thousands of batches. The [`ZcdpAccountant`] tracks both routes and
//! [`ZcdpAccountant::epsilon`] always reports the smaller of the two valid
//! bounds, so switching the accounting backend can only tighten the quoted
//! guarantee.

use crate::{PrivacyError, PrivacyGuarantee};
use serde::{Deserialize, Serialize};

/// The ρ-zCDP cost implied by one pure ε-DP release: `ρ = ε²/2`
/// (Bun & Steinke 2016, Proposition 1.4).
///
/// # Errors
///
/// Returns [`PrivacyError::InvalidParameter`] for negative or non-finite ε.
pub fn pure_dp_to_rho(epsilon: f64) -> Result<f64, PrivacyError> {
    if !epsilon.is_finite() || epsilon < 0.0 {
        return Err(PrivacyError::InvalidParameter {
            name: "epsilon",
            message: format!("must be a finite non-negative number, got {epsilon}"),
        });
    }
    Ok(epsilon * epsilon / 2.0)
}

/// The (ε, δ)-DP guarantee implied by ρ-zCDP at a chosen δ:
/// `ε = ρ + 2√(ρ·ln(1/δ))` (Bun & Steinke 2016, Proposition 1.3).
///
/// # Errors
///
/// Returns [`PrivacyError::InvalidParameter`] for a negative / non-finite ρ
/// or a δ outside `(0, 1)`.
pub fn rho_to_epsilon(rho: f64, delta: f64) -> Result<f64, PrivacyError> {
    if !rho.is_finite() || rho < 0.0 {
        return Err(PrivacyError::InvalidParameter {
            name: "rho",
            message: format!("must be a finite non-negative number, got {rho}"),
        });
    }
    if !delta.is_finite() || delta <= 0.0 || delta >= 1.0 {
        return Err(PrivacyError::InvalidParameter {
            name: "delta",
            message: format!("must lie in (0, 1), got {delta}"),
        });
    }
    Ok(rho + 2.0 * (rho * (1.0 / delta).ln()).sqrt())
}

/// A single ρ-zCDP expenditure recorded by the accountant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZcdpSpend {
    /// The ρ consumed by the event.
    pub rho: f64,
    /// The pure-composition ε of the event, when the spend originated from
    /// an (ε, δ) guarantee — kept so the accountant can also quote the
    /// classic sequential-composition bound.
    pub pure_epsilon: Option<f64>,
    /// The δ the event carried (approximate-DP slack, composes additively).
    pub delta: f64,
    /// Free-form label (e.g. `"batch"`), used for reporting.
    pub label: String,
}

/// Tracks cumulative privacy loss in ρ-zCDP with conversion to (ε, δ) at
/// query time.
///
/// Spends enter either as raw ρ ([`ZcdpAccountant::spend_rho`], e.g. one
/// Gaussian-mechanism release of a [`crate::TreeAggregator`] stream) or as
/// an (ε, δ) guarantee ([`ZcdpAccountant::spend_guarantee`], e.g. one
/// shuffler batch from the [`crate::AmplificationLedger`]), which is charged
/// `ε²/2` of ρ while its δ accrues as slack. [`ZcdpAccountant::epsilon`]
/// converts the composed ρ back to an ε at a caller-chosen δ and — whenever
/// every spend carried a pure ε — never reports a looser value than plain
/// sequential composition would.
///
/// ```
/// use p2b_privacy::{PrivacyGuarantee, ZcdpAccountant};
///
/// # fn main() -> Result<(), p2b_privacy::PrivacyError> {
/// let per_batch = PrivacyGuarantee::pure(0.693)?; // ε = ln 2 per batch
/// let mut acc = ZcdpAccountant::new();
/// for _ in 0..10_000 {
///     acc.spend_guarantee(&per_batch, "batch")?;
/// }
/// let zcdp = acc.epsilon(1e-6)?;
/// let pure = 10_000.0 * 0.693;
/// assert!(zcdp < pure / 2.0, "zCDP composes O(√k), not O(k)");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZcdpAccountant {
    spends: Vec<ZcdpSpend>,
    rho: f64,
    delta_slack: f64,
    pure_epsilon: Option<f64>,
    budget: Option<f64>,
}

impl Default for ZcdpAccountant {
    fn default() -> Self {
        Self::new()
    }
}

impl ZcdpAccountant {
    /// Creates an unbounded accountant (no ρ budget enforcement).
    #[must_use]
    pub fn new() -> Self {
        Self {
            spends: Vec::new(),
            rho: 0.0,
            delta_slack: 0.0,
            pure_epsilon: Some(0.0),
            budget: None,
        }
    }

    /// Creates an accountant that refuses expenditures beyond a total ρ of
    /// `budget`. Spending **exactly to** the budget is allowed; the first ρ
    /// beyond it is refused.
    ///
    /// # Errors
    ///
    /// Returns [`PrivacyError::InvalidParameter`] for a non-positive or
    /// non-finite budget.
    pub fn with_budget(budget: f64) -> Result<Self, PrivacyError> {
        if !budget.is_finite() || budget <= 0.0 {
            return Err(PrivacyError::InvalidParameter {
                name: "budget",
                message: format!("must be a finite positive number, got {budget}"),
            });
        }
        Ok(Self {
            budget: Some(budget),
            ..Self::new()
        })
    }

    /// Records a raw ρ-zCDP expenditure (e.g. a Gaussian-mechanism release).
    ///
    /// # Errors
    ///
    /// Returns [`PrivacyError::InvalidParameter`] for negative / non-finite
    /// ρ and [`PrivacyError::BudgetExceeded`] when a budget is configured
    /// and the composed total would exceed it. A refused expenditure is not
    /// recorded.
    pub fn spend_rho(&mut self, rho: f64, label: impl Into<String>) -> Result<(), PrivacyError> {
        self.spend_inner(rho, None, 0.0, label.into())
    }

    /// Records an (ε, δ)-DP expenditure: charged `ε²/2` of ρ, with δ
    /// accruing as approximate-DP slack; the pure ε is kept so conversion
    /// can fall back to sequential composition when that is tighter.
    ///
    /// # Errors
    ///
    /// Returns [`PrivacyError::BudgetExceeded`] when the composed ρ would
    /// exceed a configured budget; the expenditure is not recorded.
    pub fn spend_guarantee(
        &mut self,
        guarantee: &PrivacyGuarantee,
        label: impl Into<String>,
    ) -> Result<(), PrivacyError> {
        let rho = pure_dp_to_rho(guarantee.epsilon())?;
        self.spend_inner(
            rho,
            Some(guarantee.epsilon()),
            guarantee.delta(),
            label.into(),
        )
    }

    fn spend_inner(
        &mut self,
        rho: f64,
        pure_epsilon: Option<f64>,
        delta: f64,
        label: String,
    ) -> Result<(), PrivacyError> {
        if !rho.is_finite() || rho < 0.0 {
            return Err(PrivacyError::InvalidParameter {
                name: "rho",
                message: format!("must be a finite non-negative number, got {rho}"),
            });
        }
        let proposed = self.rho + rho;
        if let Some(budget) = self.budget {
            if proposed > budget {
                return Err(PrivacyError::BudgetExceeded {
                    budget,
                    requested: proposed,
                });
            }
        }
        self.rho = proposed;
        self.delta_slack = (self.delta_slack + delta).min(1.0);
        self.pure_epsilon = match (self.pure_epsilon, pure_epsilon) {
            (Some(total), Some(eps)) => Some(total + eps),
            _ => None,
        };
        self.spends.push(ZcdpSpend {
            rho,
            pure_epsilon,
            delta,
            label,
        });
        Ok(())
    }

    /// The total composed ρ.
    #[must_use]
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// The accumulated approximate-DP slack Σδᵢ of the recorded spends.
    #[must_use]
    pub fn delta_slack(&self) -> f64 {
        self.delta_slack
    }

    /// The classic sequential-composition ε (Σεᵢ), available while every
    /// recorded spend carried a pure ε.
    #[must_use]
    pub fn pure_epsilon(&self) -> Option<f64> {
        self.pure_epsilon
    }

    /// Number of recorded expenditures.
    #[must_use]
    pub fn count(&self) -> usize {
        self.spends.len()
    }

    /// Iterates over the recorded expenditures in order.
    pub fn iter(&self) -> std::slice::Iter<'_, ZcdpSpend> {
        self.spends.iter()
    }

    /// The remaining ρ before the budget is exhausted (`None` when
    /// unbounded).
    #[must_use]
    pub fn remaining_rho(&self) -> Option<f64> {
        self.budget.map(|b| (b - self.rho).max(0.0))
    }

    /// The ε of the composed loss at target slack `delta`: the minimum of
    /// the zCDP conversion `ρ + 2√(ρ·ln(1/δ))` and — when available — the
    /// sequential-composition total Σεᵢ. Both are valid (ε, δ')-DP bounds at
    /// `δ' = delta + `[`ZcdpAccountant::delta_slack`], so the minimum is
    /// never looser than either route alone.
    ///
    /// # Errors
    ///
    /// Returns [`PrivacyError::InvalidParameter`] for δ outside `(0, 1)`.
    pub fn epsilon(&self, delta: f64) -> Result<f64, PrivacyError> {
        let zcdp = rho_to_epsilon(self.rho, delta)?;
        Ok(match self.pure_epsilon {
            Some(pure) => zcdp.min(pure),
            None => zcdp,
        })
    }

    /// The full (ε, δ)-DP guarantee at target slack `delta`:
    /// ([`ZcdpAccountant::epsilon`], `delta + ` Σδᵢ, saturated at 1).
    ///
    /// # Errors
    ///
    /// Returns [`PrivacyError::InvalidParameter`] for δ outside `(0, 1)`.
    pub fn to_guarantee(&self, delta: f64) -> Result<PrivacyGuarantee, PrivacyError> {
        PrivacyGuarantee::new(self.epsilon(delta)?, (delta + self.delta_slack).min(1.0))
    }
}

/// Side-by-side composition of one per-opportunity guarantee over a horizon:
/// the pure sequential-composition route against the ρ-zCDP route, as
/// reported by a [`ZcdpAccountant`] fed the same spend sequence.
///
/// Emitted into the figures accounting artifact so the tightening is a
/// recorded number, not a claim.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompositionComparison {
    /// Number of composed reporting opportunities.
    pub horizon: u32,
    /// The per-opportunity ε composed.
    pub per_opportunity_epsilon: f64,
    /// The per-opportunity δ composed.
    pub per_opportunity_delta: f64,
    /// The target δ of the zCDP conversion.
    pub target_delta: f64,
    /// Total composed ρ.
    pub rho: f64,
    /// ε under classic sequential composition: `horizon · ε`.
    pub pure_epsilon: f64,
    /// ε under zCDP composition at `target_delta` (already min'd with the
    /// pure route, so never looser).
    pub zcdp_epsilon: f64,
}

/// Composes `horizon` copies of `per_opportunity` through both accounting
/// backends and reports the resulting ε values side by side.
///
/// # Errors
///
/// Returns [`PrivacyError::InvalidParameter`] for a zero horizon or a
/// `target_delta` outside `(0, 1)`.
pub fn compare_composition(
    per_opportunity: PrivacyGuarantee,
    horizon: u32,
    target_delta: f64,
) -> Result<CompositionComparison, PrivacyError> {
    if horizon == 0 {
        return Err(PrivacyError::InvalidParameter {
            name: "horizon",
            message: "must be at least 1".to_owned(),
        });
    }
    let mut accountant = ZcdpAccountant::new();
    for _ in 0..horizon {
        accountant.spend_guarantee(&per_opportunity, "opportunity")?;
    }
    let pure = per_opportunity.compose_n(horizon);
    Ok(CompositionComparison {
        horizon,
        per_opportunity_epsilon: per_opportunity.epsilon(),
        per_opportunity_delta: per_opportunity.delta(),
        target_delta,
        rho: accountant.rho(),
        pure_epsilon: pure.epsilon(),
        zcdp_epsilon: accountant.epsilon(target_delta)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_match_the_closed_forms() {
        assert_eq!(pure_dp_to_rho(0.0).unwrap(), 0.0);
        assert!((pure_dp_to_rho(2.0).unwrap() - 2.0).abs() < 1e-12);
        assert!(pure_dp_to_rho(-1.0).is_err());
        let eps = rho_to_epsilon(0.5, 1e-6).unwrap();
        assert!((eps - (0.5 + 2.0 * (0.5 * (1e6f64).ln()).sqrt())).abs() < 1e-12);
        assert!(rho_to_epsilon(0.5, 0.0).is_err());
        assert!(rho_to_epsilon(0.5, 1.0).is_err());
        assert!(rho_to_epsilon(f64::NAN, 0.5).is_err());
    }

    #[test]
    fn rho_composes_additively() {
        let mut acc = ZcdpAccountant::new();
        acc.spend_rho(0.25, "a").unwrap();
        acc.spend_rho(0.5, "b").unwrap();
        assert_eq!(acc.rho(), 0.75);
        assert_eq!(acc.count(), 2);
        assert_eq!(
            acc.pure_epsilon(),
            None,
            "raw-rho spends drop the pure route"
        );
    }

    #[test]
    fn guarantee_spends_keep_both_routes() {
        let g = PrivacyGuarantee::new(1.0, 1e-8).unwrap();
        let mut acc = ZcdpAccountant::new();
        acc.spend_guarantee(&g, "batch").unwrap();
        acc.spend_guarantee(&g, "batch").unwrap();
        assert!((acc.rho() - 1.0).abs() < 1e-12);
        assert_eq!(acc.pure_epsilon(), Some(2.0));
        assert!((acc.delta_slack() - 2e-8).abs() < 1e-20);
        // At 2 compositions the pure route is tighter and must win the min.
        assert_eq!(acc.epsilon(1e-6).unwrap(), 2.0);
    }

    #[test]
    fn budget_boundary_is_exact() {
        let mut acc = ZcdpAccountant::with_budget(1.0).unwrap();
        for _ in 0..4 {
            acc.spend_rho(0.25, "q").unwrap();
        }
        assert_eq!(acc.rho(), 1.0);
        assert_eq!(acc.remaining_rho(), Some(0.0));
        let err = acc.spend_rho(0.25, "over");
        assert!(matches!(err, Err(PrivacyError::BudgetExceeded { .. })));
        assert_eq!(acc.count(), 4, "refused spends are not recorded");
        assert!(ZcdpAccountant::with_budget(0.0).is_err());
    }

    #[test]
    fn comparison_reports_both_routes() {
        let g = PrivacyGuarantee::pure(std::f64::consts::LN_2).unwrap();
        let cmp = compare_composition(g, 10_000, 1e-6).unwrap();
        assert!((cmp.pure_epsilon - 10_000.0 * std::f64::consts::LN_2).abs() < 1e-6);
        assert!(
            cmp.zcdp_epsilon < cmp.pure_epsilon,
            "zCDP must be strictly tighter at horizon 10^4"
        );
        assert!(compare_composition(g, 0, 1e-6).is_err());
    }

    #[test]
    fn to_guarantee_carries_slack() {
        let g = PrivacyGuarantee::new(0.5, 1e-7).unwrap();
        let mut acc = ZcdpAccountant::new();
        for _ in 0..3 {
            acc.spend_guarantee(&g, "b").unwrap();
        }
        let out = acc.to_guarantee(1e-6).unwrap();
        assert!((out.delta() - (1e-6 + 3e-7)).abs() < 1e-18);
        assert!(out.epsilon() <= 1.5 + 1e-12);
    }
}
