//! Privacy amplification by pre-sampling (Equations 2 and 3 of the paper).

use crate::{Participation, PrivacyError};
use serde::{Deserialize, Serialize};

/// The ε of the combined pre-sampling + crowd-blending mechanism
/// (Equation 2 of the paper):
///
/// ```text
/// ε = ln( p · (2 − p)/(1 − p) · e^ε̄ + (1 − p) )
/// ```
///
/// With the exact encoder (ε̄ = 0) this reduces to Equation 3, and at
/// `p = 0.5` it evaluates to `ln 2 ≈ 0.693`, the headline privacy budget of
/// the paper.
///
/// # Errors
///
/// Returns [`PrivacyError::InvalidParameter`] when `epsilon_bar` is negative
/// or non-finite.
///
/// ```
/// use p2b_privacy::{amplified_epsilon, Participation};
/// let eps = amplified_epsilon(Participation::new(0.5).unwrap(), 0.0).unwrap();
/// assert!((eps - 0.6931471805599453).abs() < 1e-12);
/// ```
pub fn amplified_epsilon(p: Participation, epsilon_bar: f64) -> Result<f64, PrivacyError> {
    if !epsilon_bar.is_finite() || epsilon_bar < 0.0 {
        return Err(PrivacyError::InvalidParameter {
            name: "epsilon_bar",
            message: format!("must be a finite non-negative number, got {epsilon_bar}"),
        });
    }
    let p = p.value();
    let inside = p * ((2.0 - p) / (1.0 - p)) * epsilon_bar.exp() + (1.0 - p);
    Ok(inside.ln())
}

/// The δ of the combined mechanism (Equation 2): `δ = e^(−Ω · l · (1 − p)²)`,
/// where `Ω` is the constant from the analysis of Gehrke et al. (2012) and
/// `l` the crowd-blending parameter.
///
/// δ shrinks exponentially in `l`, which is the reason the paper can make δ
/// negligible simply by raising the shuffler threshold.
///
/// # Errors
///
/// Returns [`PrivacyError::InvalidParameter`] when `crowd_size == 0` or
/// `omega` is not strictly positive and finite.
pub fn amplified_delta(p: Participation, crowd_size: u64, omega: f64) -> Result<f64, PrivacyError> {
    if crowd_size == 0 {
        return Err(PrivacyError::InvalidParameter {
            name: "crowd_size",
            message: "must be at least 1".to_owned(),
        });
    }
    if !omega.is_finite() || omega <= 0.0 {
        return Err(PrivacyError::InvalidParameter {
            name: "omega",
            message: format!("must be a finite positive number, got {omega}"),
        });
    }
    let q = 1.0 - p.value();
    Ok((-omega * crowd_size as f64 * q * q).exp())
}

/// Inverts Equation 3: the participation probability needed to achieve a
/// target ε with an exact (ε̄ = 0) crowd-blending encoder.
///
/// Solving `e^ε = p(2 − p)/(1 − p) + 1 − p` for `p` gives a quadratic in `p`;
/// the root inside `(0, 1)` is returned.
///
/// # Errors
///
/// Returns [`PrivacyError::InvalidParameter`] for non-positive or non-finite
/// targets (ε → 0 requires p → 0, which is outside the open interval).
pub fn participation_for_epsilon(target_epsilon: f64) -> Result<Participation, PrivacyError> {
    if !target_epsilon.is_finite() || target_epsilon <= 0.0 {
        return Err(PrivacyError::InvalidParameter {
            name: "target_epsilon",
            message: format!("must be a finite positive number, got {target_epsilon}"),
        });
    }
    let e = target_epsilon.exp();
    // From e = (p(2-p) + (1-p)^2) / (1-p) = (1 + p - p^2 + ... ) — expand:
    // p(2-p)/(1-p) + (1-p) = e
    // => p(2-p) + (1-p)^2 = e(1-p)
    // => 2p - p^2 + 1 - 2p + p^2 = e - ep
    // => 1 = e - ep  =>  p = (e - 1)/e = 1 - e^{-ε}.
    let p = 1.0 - 1.0 / e;
    Participation::new(p)
}

/// One point of the ε(p) curve of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpsilonPoint {
    /// Participation probability.
    pub p: f64,
    /// Resulting differential-privacy ε (Equation 3, ε̄ = 0).
    pub epsilon: f64,
}

/// Sweeps the participation probability over `(0, 1)` and reports the
/// resulting ε values — the data series plotted in Figure 3 of the paper.
///
/// The sweep covers `steps` evenly spaced probabilities strictly inside
/// `(p_min, p_max)`.
///
/// # Errors
///
/// Returns [`PrivacyError::InvalidParameter`] when the range is empty,
/// out of `(0, 1)`, or `steps == 0`.
pub fn epsilon_sweep(
    p_min: f64,
    p_max: f64,
    steps: usize,
) -> Result<Vec<EpsilonPoint>, PrivacyError> {
    if steps == 0 {
        return Err(PrivacyError::InvalidParameter {
            name: "steps",
            message: "must be at least 1".to_owned(),
        });
    }
    if !(p_min > 0.0 && p_max < 1.0 && p_min <= p_max) {
        return Err(PrivacyError::InvalidParameter {
            name: "range",
            message: format!("need 0 < p_min <= p_max < 1, got [{p_min}, {p_max}]"),
        });
    }
    let mut points = Vec::with_capacity(steps);
    for i in 0..steps {
        let fraction = if steps == 1 {
            0.0
        } else {
            i as f64 / (steps - 1) as f64
        };
        let p_value = p_min + fraction * (p_max - p_min);
        let p = Participation::new(p_value)?;
        points.push(EpsilonPoint {
            p: p_value,
            epsilon: amplified_epsilon(p, 0.0)?,
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> Participation {
        Participation::new(v).unwrap()
    }

    #[test]
    fn headline_value_p_half_gives_ln_two() {
        let eps = amplified_epsilon(p(0.5), 0.0).unwrap();
        assert!((eps - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn epsilon_is_monotone_in_participation() {
        let mut prev = 0.0;
        for &pv in &[0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let eps = amplified_epsilon(p(pv), 0.0).unwrap();
            assert!(eps > prev, "ε should grow with p ({pv}: {eps} <= {prev})");
            prev = eps;
        }
    }

    #[test]
    fn epsilon_vanishes_as_participation_goes_to_zero() {
        let eps = amplified_epsilon(p(1e-6), 0.0).unwrap();
        assert!(eps < 1e-4);
    }

    #[test]
    fn positive_epsilon_bar_weakens_the_guarantee() {
        let tight = amplified_epsilon(p(0.5), 0.0).unwrap();
        let loose = amplified_epsilon(p(0.5), 0.5).unwrap();
        assert!(loose > tight);
        assert!(amplified_epsilon(p(0.5), -1.0).is_err());
        assert!(amplified_epsilon(p(0.5), f64::NAN).is_err());
    }

    #[test]
    fn delta_shrinks_exponentially_in_crowd_size() {
        let d10 = amplified_delta(p(0.5), 10, 0.1).unwrap();
        let d20 = amplified_delta(p(0.5), 20, 0.1).unwrap();
        let d40 = amplified_delta(p(0.5), 40, 0.1).unwrap();
        assert!(d20 < d10);
        assert!(d40 < d20);
        // Exponential decay: adding 20 to l multiplies delta by the square of
        // the factor that adding 10 does.
        assert!((d40 / d20 - (d20 / d10).powi(2)).abs() < 1e-9);
    }

    #[test]
    fn delta_grows_with_participation() {
        // Higher p means less pre-sampling noise, hence larger δ.
        let low_p = amplified_delta(p(0.25), 10, 0.1).unwrap();
        let high_p = amplified_delta(p(0.75), 10, 0.1).unwrap();
        assert!(high_p > low_p);
    }

    #[test]
    fn delta_validates_parameters() {
        assert!(amplified_delta(p(0.5), 0, 0.1).is_err());
        assert!(amplified_delta(p(0.5), 10, 0.0).is_err());
        assert!(amplified_delta(p(0.5), 10, f64::INFINITY).is_err());
    }

    #[test]
    fn inverse_round_trips_epsilon() {
        for &target in &[0.1, 0.5, std::f64::consts::LN_2, 1.0, 2.0] {
            let p = participation_for_epsilon(target).unwrap();
            let eps = amplified_epsilon(p, 0.0).unwrap();
            assert!(
                (eps - target).abs() < 1e-9,
                "target {target}, p {p}, eps {eps}"
            );
        }
    }

    #[test]
    fn inverse_of_ln_two_is_one_half() {
        let p = participation_for_epsilon(std::f64::consts::LN_2).unwrap();
        assert!((p.value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn inverse_rejects_invalid_targets() {
        assert!(participation_for_epsilon(0.0).is_err());
        assert!(participation_for_epsilon(-1.0).is_err());
        assert!(participation_for_epsilon(f64::INFINITY).is_err());
    }

    #[test]
    fn sweep_covers_requested_range_and_is_monotone() {
        let points = epsilon_sweep(0.05, 0.95, 19).unwrap();
        assert_eq!(points.len(), 19);
        assert!((points[0].p - 0.05).abs() < 1e-12);
        assert!((points[18].p - 0.95).abs() < 1e-12);
        for window in points.windows(2) {
            assert!(window[1].epsilon > window[0].epsilon);
        }
    }

    #[test]
    fn sweep_validates_arguments() {
        assert!(epsilon_sweep(0.0, 0.5, 5).is_err());
        assert!(epsilon_sweep(0.1, 1.0, 5).is_err());
        assert!(epsilon_sweep(0.6, 0.4, 5).is_err());
        assert!(epsilon_sweep(0.1, 0.9, 0).is_err());
        // A single step degenerates to the left endpoint.
        let single = epsilon_sweep(0.5, 0.5, 1).unwrap();
        assert_eq!(single.len(), 1);
        assert!((single[0].epsilon - std::f64::consts::LN_2).abs() < 1e-12);
    }
}
