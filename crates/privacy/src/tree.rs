//! Binary partial-sum (tree-aggregation) release of running sums under
//! continual observation.
//!
//! The classic central-DP mechanism for releasing a running sum `S(t) = Σ_{i
//! ≤ t} x_i` over a stream (Dwork et al. 2010; Chan, Shi & Song 2011; the
//! `PartialSum` technique of PrivateLinUCB): arrange the leaves `1..T` in a
//! binary tree of dyadic intervals and add fresh noise **once per dyadic
//! node**. Every prefix `[1, t]` is covered by the dyadic decomposition of
//! `t` — at most `⌈log₂ T⌉` nodes — so each released prefix carries the sum
//! of at most `⌈log₂ T⌉` noise draws, while each *leaf* participates in at
//! most `⌊log₂ T⌋ + 1` noisy nodes. Both logarithmic counts are what make
//! the mechanism's utility (`O(log T)` noise variance per release) and its
//! privacy cost (one Gaussian-mechanism charge per level) tractable over
//! long horizons.
//!
//! # Determinism
//!
//! The noise of node `(level, index)` at coordinate `c` is a **pure
//! function** of `(seed, level, index, c)` — counter-based lanes in the
//! style of `p2b_sim::ArrivalProcess`, not a stateful RNG stream. Two
//! consequences the property suite pins:
//!
//! * a node's noise is drawn "once" by construction: every release that
//!   covers the node sees bit-identical noise without the tree storing it;
//! * releases are byte-identical across runs, chunkings and worker counts
//!   for a fixed seed — there is no RNG state to interleave.
//!
//! The exact (noiseless) prefix is maintained as a sequentially accumulated
//! running sum, so with `sigma = 0` the release equals the plain running sum
//! bit for bit; the tree structure determines only where noise attaches,
//! which is exactly the part the privacy argument is about.

use crate::PrivacyError;
use serde::{Deserialize, Serialize};

/// SplitMix64 — the same mixing permutation as `p2b_shuffler::splitmix64`,
/// reimplemented here so the leaf privacy crate stays dependency-free.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a uniform `u64` onto `(0, 1]` with 53 bits of precision (never zero,
/// so it is safe under `ln`).
fn unit_open(noise: u64) -> f64 {
    ((noise >> 11) + 1) as f64 / (1u64 << 53) as f64
}

/// One dyadic node of the partial-sum tree.
///
/// Node `(level, index)` covers leaves `index·2^level + 1 ..= (index+1)·2^level`
/// (one-based leaf positions). The pair is stable forever: the same node id
/// always denotes the same interval, which is what lets the noise be a pure
/// function of the id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TreeNode {
    /// Tree level: the node covers a block of `2^level` leaves.
    pub level: u32,
    /// Block index within the level.
    pub index: u64,
}

/// The dyadic decomposition of the prefix `[1, t]`: one node per set bit of
/// `t`, highest level first. Empty for `t = 0`.
///
/// The length is `t.count_ones()`, which never exceeds
/// `⌈log₂(t + 1)⌉` — the `O(log T)` node count the mechanism's utility rests
/// on.
#[must_use]
pub fn prefix_nodes(t: u64) -> Vec<TreeNode> {
    let mut nodes = Vec::with_capacity(t.count_ones() as usize);
    let mut covered = 0u64;
    for level in (0..u64::BITS).rev() {
        if t & (1u64 << level) != 0 {
            nodes.push(TreeNode {
                level,
                index: covered >> level,
            });
            covered += 1u64 << level;
        }
    }
    nodes
}

/// Configuration of a [`TreeAggregator`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Dimension of the aggregated vectors (e.g. `d² + d + 1` for a
    /// flattened LinUCB Gram matrix, reward vector and pull count).
    pub dimension: usize,
    /// Maximum number of leaves the tree will accept. Fixes the accounting:
    /// the per-leaf privacy charge is one Gaussian mechanism per level, and
    /// the number of levels is `⌊log₂ horizon⌋ + 1`.
    pub horizon: u64,
    /// Standard deviation of the Gaussian noise added per node and
    /// coordinate. `0` disables noise (exact prefix sums, no privacy).
    pub sigma: f64,
    /// Seed of the counter-based noise lanes.
    pub seed: u64,
}

impl TreeConfig {
    /// Creates a config with the given shape and noise scale.
    #[must_use]
    pub fn new(dimension: usize, horizon: u64, sigma: f64, seed: u64) -> Self {
        Self {
            dimension,
            horizon,
            sigma,
            seed,
        }
    }

    fn validate(&self) -> Result<(), PrivacyError> {
        if self.dimension == 0 {
            return Err(PrivacyError::InvalidParameter {
                name: "dimension",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.horizon == 0 {
            return Err(PrivacyError::InvalidParameter {
                name: "horizon",
                message: "must be at least 1".to_owned(),
            });
        }
        if !self.sigma.is_finite() || self.sigma < 0.0 {
            return Err(PrivacyError::InvalidParameter {
                name: "sigma",
                message: format!("must be a finite non-negative number, got {}", self.sigma),
            });
        }
        Ok(())
    }
}

/// Noisy partial-sum release of a vector stream via tree aggregation.
///
/// Feed per-event vectors with [`TreeAggregator::push`]; read the current
/// noisy prefix with [`TreeAggregator::release`]. The exact running sum is
/// accumulated sequentially (left-to-right adds, one per push), and a
/// release adds the noise of the `t.count_ones()` dyadic nodes covering the
/// prefix — at most [`TreeAggregator::max_nodes_per_prefix`] of them.
///
/// # Example
///
/// ```
/// use p2b_privacy::{TreeAggregator, TreeConfig};
///
/// # fn main() -> Result<(), p2b_privacy::PrivacyError> {
/// // A noiseless tree releases exact running sums.
/// let mut tree = TreeAggregator::new(TreeConfig::new(2, 8, 0.0, 7))?;
/// tree.push(&[1.0, 2.0])?;
/// tree.push(&[3.0, 4.0])?;
/// assert_eq!(tree.release(), vec![4.0, 6.0]);
/// // With noise, each release still touches only O(log T) noisy nodes.
/// let noisy = TreeAggregator::new(TreeConfig::new(2, 8, 1.0, 7))?;
/// assert_eq!(noisy.max_nodes_per_prefix(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TreeAggregator {
    config: TreeConfig,
    count: u64,
    running: Vec<f64>,
}

impl TreeAggregator {
    /// Validates `config` and builds an empty aggregator.
    ///
    /// # Errors
    ///
    /// Returns [`PrivacyError::InvalidParameter`] for a zero dimension or
    /// horizon, or a negative / non-finite `sigma`.
    pub fn new(config: TreeConfig) -> Result<Self, PrivacyError> {
        config.validate()?;
        Ok(Self {
            running: vec![0.0; config.dimension],
            config,
            count: 0,
        })
    }

    /// The configuration the aggregator was built from.
    #[must_use]
    pub fn config(&self) -> &TreeConfig {
        &self.config
    }

    /// Number of leaves pushed so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Appends one leaf vector to the stream.
    ///
    /// # Errors
    ///
    /// Returns [`PrivacyError::InvalidParameter`] when `x` has the wrong
    /// dimension or the horizon is already full (the horizon fixes the
    /// privacy accounting, so it is a hard ceiling).
    pub fn push(&mut self, x: &[f64]) -> Result<(), PrivacyError> {
        if x.len() != self.config.dimension {
            return Err(PrivacyError::InvalidParameter {
                name: "x",
                message: format!(
                    "dimension mismatch: expected {}, got {}",
                    self.config.dimension,
                    x.len()
                ),
            });
        }
        if self.count >= self.config.horizon {
            return Err(PrivacyError::InvalidParameter {
                name: "horizon",
                message: format!(
                    "tree is full: horizon {} leaves already pushed",
                    self.config.horizon
                ),
            });
        }
        for (acc, value) in self.running.iter_mut().zip(x) {
            *acc += value;
        }
        self.count += 1;
        Ok(())
    }

    /// The dyadic nodes whose noise the current release carries — the
    /// decomposition of `[1, count]`, at most
    /// [`TreeAggregator::max_nodes_per_prefix`] of them.
    #[must_use]
    pub fn release_nodes(&self) -> Vec<TreeNode> {
        prefix_nodes(self.count)
    }

    /// The noisy prefix sum over everything pushed so far: the exact running
    /// sum plus one Gaussian draw per covering dyadic node per coordinate.
    /// With `sigma = 0` this is the exact running sum, bit for bit.
    #[must_use]
    pub fn release(&self) -> Vec<f64> {
        let mut out = self.running.clone();
        if self.config.sigma > 0.0 {
            for node in self.release_nodes() {
                for (coord, value) in out.iter_mut().enumerate() {
                    *value += self.node_noise(node, coord);
                }
            }
        }
        out
    }

    /// The noise of one dyadic node at one coordinate: a Gaussian draw with
    /// standard deviation `sigma`, a pure function of
    /// `(seed, level, index, coord)` (Box–Muller over two SplitMix64 lanes).
    #[must_use]
    pub fn node_noise(&self, node: TreeNode, coord: usize) -> f64 {
        if self.config.sigma == 0.0 {
            return 0.0;
        }
        let base = splitmix64(
            self.config.seed
                ^ splitmix64(u64::from(node.level).wrapping_mul(0xA24B_AED4_963E_E407)),
        );
        let base = splitmix64(base ^ node.index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let lane =
            |k: u64| splitmix64(base ^ k.wrapping_mul(0xD605_0000_0B50_0B51).wrapping_add(1));
        let u1 = unit_open(lane(2 * coord as u64));
        let u2 = unit_open(lane(2 * coord as u64 + 1));
        self.config.sigma * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Upper bound on the number of noisy nodes any release carries:
    /// `⌈log₂(horizon + 1)⌉` (the maximum popcount of a prefix length
    /// `t ≤ horizon`).
    #[must_use]
    pub fn max_nodes_per_prefix(&self) -> u32 {
        u64::BITS - self.config.horizon.leading_zeros()
    }

    /// Number of noisy nodes each leaf participates in: one per tree level,
    /// `⌊log₂ horizon⌋ + 1` in total. This is the composition count of the
    /// per-leaf privacy charge.
    #[must_use]
    pub fn nodes_per_leaf(&self) -> u32 {
        u64::BITS - self.config.horizon.leading_zeros()
    }

    /// The ρ-zCDP cost of the whole release stream for one leaf whose vector
    /// has L2 norm at most `sensitivity`: each leaf lands in
    /// [`TreeAggregator::nodes_per_leaf`] Gaussian releases of scale `sigma`,
    /// and each costs `Δ²/(2σ²)` (the Gaussian mechanism), composing to
    /// `nodes_per_leaf · Δ²/(2σ²)`. Infinite when `sigma = 0` (no privacy).
    ///
    /// # Errors
    ///
    /// Returns [`PrivacyError::InvalidParameter`] for a non-positive or
    /// non-finite sensitivity.
    pub fn rho_per_leaf(&self, sensitivity: f64) -> Result<f64, PrivacyError> {
        if !sensitivity.is_finite() || sensitivity <= 0.0 {
            return Err(PrivacyError::InvalidParameter {
                name: "sensitivity",
                message: format!("must be a finite positive number, got {sensitivity}"),
            });
        }
        if self.config.sigma == 0.0 {
            return Ok(f64::INFINITY);
        }
        let per_node = sensitivity * sensitivity / (2.0 * self.config.sigma * self.config.sigma);
        Ok(f64::from(self.nodes_per_leaf()) * per_node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_shape_and_sigma() {
        assert!(TreeAggregator::new(TreeConfig::new(0, 8, 1.0, 0)).is_err());
        assert!(TreeAggregator::new(TreeConfig::new(2, 0, 1.0, 0)).is_err());
        assert!(TreeAggregator::new(TreeConfig::new(2, 8, -1.0, 0)).is_err());
        assert!(TreeAggregator::new(TreeConfig::new(2, 8, f64::NAN, 0)).is_err());
        assert!(TreeAggregator::new(TreeConfig::new(2, 8, 0.0, 0)).is_ok());
    }

    #[test]
    fn push_validates_dimension_and_horizon() {
        let mut tree = TreeAggregator::new(TreeConfig::new(2, 2, 0.0, 0)).unwrap();
        assert!(tree.push(&[1.0]).is_err());
        tree.push(&[1.0, 2.0]).unwrap();
        tree.push(&[1.0, 2.0]).unwrap();
        assert!(tree.push(&[1.0, 2.0]).is_err(), "horizon is a hard ceiling");
    }

    #[test]
    fn prefix_nodes_match_binary_decomposition() {
        assert!(prefix_nodes(0).is_empty());
        assert_eq!(prefix_nodes(1), vec![TreeNode { level: 0, index: 0 }]);
        // 6 = 4 + 2: block [1..4] (level 2, index 0) then [5..6] (level 1, index 2).
        assert_eq!(
            prefix_nodes(6),
            vec![
                TreeNode { level: 2, index: 0 },
                TreeNode { level: 1, index: 2 }
            ]
        );
        for t in 0..200u64 {
            let nodes = prefix_nodes(t);
            assert_eq!(nodes.len(), t.count_ones() as usize);
            // Nodes tile [1, t] exactly: sizes sum to t.
            let covered: u64 = nodes.iter().map(|n| 1u64 << n.level).sum();
            assert_eq!(covered, t);
        }
    }

    #[test]
    fn noiseless_release_is_the_exact_running_sum() {
        let mut tree = TreeAggregator::new(TreeConfig::new(3, 16, 0.0, 9)).unwrap();
        let mut exact = [0.0f64; 3];
        for i in 0..10 {
            let x = [i as f64 * 0.1, -(i as f64), 1.0 / (i + 1) as f64];
            for (acc, v) in exact.iter_mut().zip(&x) {
                *acc += v;
            }
            tree.push(&x).unwrap();
            let release = tree.release();
            for (a, b) in release.iter().zip(&exact) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn node_noise_is_a_pure_function_of_the_id() {
        let a = TreeAggregator::new(TreeConfig::new(4, 64, 1.5, 42)).unwrap();
        let b = TreeAggregator::new(TreeConfig::new(4, 64, 1.5, 42)).unwrap();
        let node = TreeNode { level: 3, index: 5 };
        for coord in 0..4 {
            assert_eq!(
                a.node_noise(node, coord).to_bits(),
                b.node_noise(node, coord).to_bits()
            );
        }
        let other_seed = TreeAggregator::new(TreeConfig::new(4, 64, 1.5, 43)).unwrap();
        assert_ne!(
            a.node_noise(node, 0).to_bits(),
            other_seed.node_noise(node, 0).to_bits()
        );
    }

    #[test]
    fn noise_has_roughly_the_requested_scale() {
        let tree = TreeAggregator::new(TreeConfig::new(1, 1 << 20, 2.0, 3)).unwrap();
        let n = 20_000u64;
        let draws: Vec<f64> = (0..n)
            .map(|i| tree.node_noise(TreeNode { level: 0, index: i }, 0))
            .collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.1, "mean {mean} should be near 0");
        assert!(
            (var.sqrt() - 2.0).abs() < 0.1,
            "std {} should be near 2",
            var.sqrt()
        );
    }

    #[test]
    fn log_bounds_match_the_horizon() {
        let tree = |t| TreeAggregator::new(TreeConfig::new(1, t, 1.0, 0)).unwrap();
        assert_eq!(tree(1).max_nodes_per_prefix(), 1);
        assert_eq!(tree(2).max_nodes_per_prefix(), 2);
        assert_eq!(tree(7).max_nodes_per_prefix(), 3);
        assert_eq!(tree(8).max_nodes_per_prefix(), 4);
        assert_eq!(tree(1024).nodes_per_leaf(), 11);
    }

    #[test]
    fn rho_per_leaf_follows_the_gaussian_mechanism() {
        let tree = TreeAggregator::new(TreeConfig::new(1, 8, 2.0, 0)).unwrap();
        // 4 levels, Δ = 2 → 4 · 4 / (2·4) = 2.
        assert!((tree.rho_per_leaf(2.0).unwrap() - 2.0).abs() < 1e-12);
        assert!(tree.rho_per_leaf(0.0).is_err());
        assert!(tree.rho_per_leaf(f64::NAN).is_err());
        let noiseless = TreeAggregator::new(TreeConfig::new(1, 8, 0.0, 0)).unwrap();
        assert!(noiseless.rho_per_leaf(1.0).unwrap().is_infinite());
    }
}
