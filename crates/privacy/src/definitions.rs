//! Core differential-privacy value types.

use crate::PrivacyError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The participation (pre-sampling) probability `p` of a local agent.
///
/// Constrained to the open interval `(0, 1)`: with `p = 0` no data is ever
/// shared (the "cold" regime) and with `p = 1` the amplification argument of
/// Gehrke et al. breaks down (ε diverges), so both endpoints are rejected.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Participation(f64);

impl Participation {
    /// Creates a participation probability.
    ///
    /// # Errors
    ///
    /// Returns [`PrivacyError::InvalidProbability`] unless `0 < p < 1`.
    pub fn new(p: f64) -> Result<Self, PrivacyError> {
        if !p.is_finite() || p <= 0.0 || p >= 1.0 {
            return Err(PrivacyError::InvalidProbability {
                name: "p",
                value: p,
            });
        }
        Ok(Self(p))
    }

    /// The probability value.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Participation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p={}", self.0)
    }
}

/// An (ε, δ) differential-privacy guarantee.
///
/// Definition 1 of the paper: a mechanism `M` is (ε, δ)-differentially
/// private if for all neighbouring datasets `X`, `X'` and all measurable `R`,
/// `Pr[M(X) ∈ R] ≤ e^ε · Pr[M(X') ∈ R] + δ`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrivacyGuarantee {
    epsilon: f64,
    delta: f64,
}

impl PrivacyGuarantee {
    /// Creates a guarantee from ε ≥ 0 and δ ∈ [0, 1].
    ///
    /// # Errors
    ///
    /// Returns [`PrivacyError::InvalidParameter`] for out-of-range values.
    pub fn new(epsilon: f64, delta: f64) -> Result<Self, PrivacyError> {
        if !epsilon.is_finite() || epsilon < 0.0 {
            return Err(PrivacyError::InvalidParameter {
                name: "epsilon",
                message: format!("must be a finite non-negative number, got {epsilon}"),
            });
        }
        if !delta.is_finite() || !(0.0..=1.0).contains(&delta) {
            return Err(PrivacyError::InvalidParameter {
                name: "delta",
                message: format!("must lie in [0, 1], got {delta}"),
            });
        }
        Ok(Self { epsilon, delta })
    }

    /// Creates a pure ε-DP guarantee (δ = 0).
    ///
    /// # Errors
    ///
    /// Returns [`PrivacyError::InvalidParameter`] for negative or non-finite ε.
    pub fn pure(epsilon: f64) -> Result<Self, PrivacyError> {
        Self::new(epsilon, 0.0)
    }

    /// The perfect guarantee (ε = 0, δ = 0) — the identity of sequential
    /// composition. Infallible, so zero-initialization sites need no panic
    /// or error path.
    #[must_use]
    pub const fn zero() -> Self {
        Self {
            epsilon: 0.0,
            delta: 0.0,
        }
    }

    /// Builds a guarantee from parameters a public constructor has already
    /// validated, skipping re-validation — the crate-internal escape hatch
    /// that keeps accessor paths free of panics and error plumbing.
    pub(crate) const fn from_validated(epsilon: f64, delta: f64) -> Self {
        Self { epsilon, delta }
    }

    /// The ε parameter.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The δ parameter.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Sequential composition with another guarantee: the ε and δ values add
    /// (Dwork & Roth 2013, Theorem 3.16). Saturates δ at 1.
    #[must_use]
    pub fn compose(&self, other: &PrivacyGuarantee) -> PrivacyGuarantee {
        PrivacyGuarantee {
            epsilon: self.epsilon + other.epsilon,
            delta: (self.delta + other.delta).min(1.0),
        }
    }

    /// Sequential composition of `k` copies of this guarantee, the bound the
    /// paper quotes for agents that report `r` tuples ((rε)-DP).
    #[must_use]
    pub fn compose_n(&self, k: u32) -> PrivacyGuarantee {
        PrivacyGuarantee {
            epsilon: self.epsilon * f64::from(k),
            delta: (self.delta * f64::from(k)).min(1.0),
        }
    }

    /// Returns `true` if this guarantee is at least as strong as `other`
    /// (smaller or equal ε and δ).
    #[must_use]
    pub fn is_at_least_as_strong_as(&self, other: &PrivacyGuarantee) -> bool {
        self.epsilon <= other.epsilon && self.delta <= other.delta
    }
}

impl fmt::Display for PrivacyGuarantee {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(ε={:.4}, δ={:.2e})-DP", self.epsilon, self.delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn participation_rejects_boundary_and_invalid_values() {
        assert!(Participation::new(0.0).is_err());
        assert!(Participation::new(1.0).is_err());
        assert!(Participation::new(-0.3).is_err());
        assert!(Participation::new(f64::NAN).is_err());
        assert!(Participation::new(0.5).is_ok());
        assert_eq!(Participation::new(0.25).unwrap().value(), 0.25);
    }

    #[test]
    fn guarantee_validates_ranges() {
        assert!(PrivacyGuarantee::new(-1.0, 0.0).is_err());
        assert!(PrivacyGuarantee::new(1.0, -0.1).is_err());
        assert!(PrivacyGuarantee::new(1.0, 1.5).is_err());
        assert!(PrivacyGuarantee::new(f64::INFINITY, 0.0).is_err());
        assert!(PrivacyGuarantee::pure(0.693).is_ok());
    }

    #[test]
    fn zero_is_the_composition_identity() {
        let zero = PrivacyGuarantee::zero();
        assert_eq!(zero.epsilon(), 0.0);
        assert_eq!(zero.delta(), 0.0);
        let g = PrivacyGuarantee::new(0.7, 1e-6).unwrap();
        assert_eq!(zero.compose(&g), g);
        assert_eq!(g.compose(&zero), g);
    }

    #[test]
    fn composition_adds_parameters() {
        let a = PrivacyGuarantee::new(0.5, 1e-6).unwrap();
        let b = PrivacyGuarantee::new(0.25, 1e-6).unwrap();
        let c = a.compose(&b);
        assert!((c.epsilon() - 0.75).abs() < 1e-12);
        assert!((c.delta() - 2e-6).abs() < 1e-15);
    }

    #[test]
    fn repeated_composition_matches_the_r_epsilon_bound() {
        let per_report = PrivacyGuarantee::pure(0.693).unwrap();
        let five = per_report.compose_n(5);
        assert!((five.epsilon() - 5.0 * 0.693).abs() < 1e-12);
        assert_eq!(five.delta(), 0.0);
    }

    #[test]
    fn delta_composition_saturates_at_one() {
        let weak = PrivacyGuarantee::new(0.1, 0.9).unwrap();
        assert_eq!(weak.compose(&weak).delta(), 1.0);
        assert_eq!(weak.compose_n(10).delta(), 1.0);
    }

    #[test]
    fn strength_ordering() {
        let strong = PrivacyGuarantee::new(0.5, 1e-9).unwrap();
        let weak = PrivacyGuarantee::new(1.0, 1e-6).unwrap();
        assert!(strong.is_at_least_as_strong_as(&weak));
        assert!(!weak.is_at_least_as_strong_as(&strong));
    }

    #[test]
    fn display_formats_both_parameters() {
        let g = PrivacyGuarantee::new(0.693, 1e-6).unwrap();
        let s = g.to_string();
        assert!(s.contains("0.693"));
        assert!(s.contains("e-6"));
    }
}
