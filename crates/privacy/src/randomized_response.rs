//! k-ary randomized response: a local-DP baseline in the spirit of RAPPOR.

use crate::{PrivacyError, PrivacyGuarantee};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// k-ary randomized response over a categorical domain of size `k`.
///
/// The paper contrasts P2B's trust model (a trusted shuffler plus
/// pre-sampling) with purely local approaches such as RAPPOR, where every
/// report is randomized on the device. This struct implements the textbook
/// k-ary randomized-response mechanism: the true category is reported with
/// probability `e^ε / (e^ε + k − 1)` and a uniformly random *other* category
/// otherwise. It satisfies ε-local differential privacy and provides an
/// unbiased frequency estimator, which is all RAPPOR-style collection can
/// offer — and exactly why the paper argues its per-report utility is too low
/// for model training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomizedResponse {
    num_categories: usize,
    epsilon: f64,
}

impl RandomizedResponse {
    /// Creates a mechanism over `num_categories` categories with budget ε.
    ///
    /// # Errors
    ///
    /// Returns [`PrivacyError::InvalidParameter`] when `num_categories < 2`
    /// or ε is not strictly positive and finite.
    pub fn new(num_categories: usize, epsilon: f64) -> Result<Self, PrivacyError> {
        if num_categories < 2 {
            return Err(PrivacyError::InvalidParameter {
                name: "num_categories",
                message: "must be at least 2".to_owned(),
            });
        }
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(PrivacyError::InvalidParameter {
                name: "epsilon",
                message: format!("must be a finite positive number, got {epsilon}"),
            });
        }
        Ok(Self {
            num_categories,
            epsilon,
        })
    }

    /// The number of categories `k`.
    #[must_use]
    pub fn num_categories(&self) -> usize {
        self.num_categories
    }

    /// The local-DP guarantee of a single report.
    #[must_use]
    pub fn guarantee(&self) -> PrivacyGuarantee {
        // ε was range-checked by `new`, so the guarantee is rebuilt without
        // re-validation (and without a panic path on this accessor).
        PrivacyGuarantee::from_validated(self.epsilon, 0.0)
    }

    /// Probability of reporting the true category.
    #[must_use]
    pub fn truth_probability(&self) -> f64 {
        let e = self.epsilon.exp();
        e / (e + self.num_categories as f64 - 1.0)
    }

    /// Randomizes one categorical value.
    ///
    /// # Errors
    ///
    /// Returns [`PrivacyError::InvalidParameter`] when `value` is out of range.
    pub fn randomize<R: Rng + ?Sized>(
        &self,
        value: usize,
        rng: &mut R,
    ) -> Result<usize, PrivacyError> {
        if value >= self.num_categories {
            return Err(PrivacyError::InvalidParameter {
                name: "value",
                message: format!("must be below {}, got {value}", self.num_categories),
            });
        }
        if rng.gen::<f64>() < self.truth_probability() {
            return Ok(value);
        }
        // Uniform over the *other* categories.
        let mut other = rng.gen_range(0..self.num_categories - 1);
        if other >= value {
            other += 1;
        }
        Ok(other)
    }

    /// Unbiased estimate of the true category frequencies from randomized
    /// reports.
    ///
    /// With truth probability `t` and lie probability `(1 − t)/(k − 1)`, the
    /// expected observed frequency of category `c` is
    /// `t·f_c + (1 − f_c)·(1 − t)/(k − 1)`; inverting gives the estimator
    /// below. Estimates may fall outside `[0, 1]` for small samples, exactly
    /// like RAPPOR's.
    #[must_use]
    pub fn estimate_frequencies(&self, reports: &[usize]) -> Vec<f64> {
        let k = self.num_categories as f64;
        let t = self.truth_probability();
        let lie = (1.0 - t) / (k - 1.0);
        let n = reports.len() as f64;
        let mut counts = vec![0.0f64; self.num_categories];
        for &r in reports {
            if r < self.num_categories {
                counts[r] += 1.0;
            }
        }
        counts
            .into_iter()
            .map(|c| {
                if n == 0.0 {
                    0.0
                } else {
                    (c / n - lie) / (t - lie)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_parameters() {
        assert!(RandomizedResponse::new(1, 1.0).is_err());
        assert!(RandomizedResponse::new(4, 0.0).is_err());
        assert!(RandomizedResponse::new(4, f64::NAN).is_err());
    }

    #[test]
    fn truth_probability_increases_with_epsilon() {
        let weak = RandomizedResponse::new(10, 0.1).unwrap();
        let strong = RandomizedResponse::new(10, 5.0).unwrap();
        assert!(strong.truth_probability() > weak.truth_probability());
        assert!(weak.truth_probability() > 1.0 / 10.0);
        assert!(strong.truth_probability() < 1.0);
    }

    #[test]
    fn randomize_stays_in_range_and_validates_input() {
        let rr = RandomizedResponse::new(5, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for v in 0..5 {
            for _ in 0..20 {
                let out = rr.randomize(v, &mut rng).unwrap();
                assert!(out < 5);
            }
        }
        assert!(rr.randomize(5, &mut rng).is_err());
    }

    #[test]
    fn empirical_truth_rate_matches_theory() {
        let rr = RandomizedResponse::new(4, 1.5).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let trials = 20_000;
        let mut kept = 0;
        for _ in 0..trials {
            if rr.randomize(2, &mut rng).unwrap() == 2 {
                kept += 1;
            }
        }
        let observed = kept as f64 / trials as f64;
        assert!(
            (observed - rr.truth_probability()).abs() < 0.02,
            "observed {observed}, expected {}",
            rr.truth_probability()
        );
    }

    #[test]
    fn frequency_estimation_is_approximately_unbiased() {
        let rr = RandomizedResponse::new(3, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        // True distribution: 60% / 30% / 10%.
        let truth = [0.6, 0.3, 0.1];
        let n = 30_000;
        let mut reports = Vec::with_capacity(n);
        for _ in 0..n {
            let u: f64 = rng.gen();
            let value = if u < 0.6 {
                0
            } else if u < 0.9 {
                1
            } else {
                2
            };
            reports.push(rr.randomize(value, &mut rng).unwrap());
        }
        let estimates = rr.estimate_frequencies(&reports);
        for (est, tru) in estimates.iter().zip(truth.iter()) {
            assert!((est - tru).abs() < 0.05, "estimates {estimates:?}");
        }
    }

    #[test]
    fn empty_reports_give_zero_estimates() {
        let rr = RandomizedResponse::new(3, 1.0).unwrap();
        assert_eq!(rr.estimate_frequencies(&[]), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn guarantee_reports_configured_epsilon() {
        let rr = RandomizedResponse::new(3, 0.7).unwrap();
        assert!((rr.guarantee().epsilon() - 0.7).abs() < 1e-12);
        assert_eq!(rr.guarantee().delta(), 0.0);
    }
}
