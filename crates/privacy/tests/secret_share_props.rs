//! Property-based tests for the fixed-point additive secret sharing used by
//! the secure-aggregation regime: encode → split → recombine → decode must
//! be exact (up to the documented half-grid-step quantization of `encode`)
//! for every value in the dynamic range, at every shard count, under any
//! fold order, and independently of the mask seed — while out-of-range
//! inputs must *error*, never wrap.

use p2b_privacy::{
    decode_fixed, encode_fixed, recombine, SecretSharer, FIXED_POINT_MAX_ABS, FIXED_POINT_SCALE,
};
use proptest::prelude::*;

proptest! {
    /// The protocol round trip is the identity on the fixed-point grid:
    /// splitting an encoded value into k shares and recombining them yields
    /// the encoded word back bit-exactly, so the only error in
    /// decode(recombine(split(encode(x)))) is encode's quantization — at
    /// most half a 2⁻⁴⁸ grid step — at every shard count.
    #[test]
    fn encode_split_recombine_decode_round_trips(
        value in -FIXED_POINT_MAX_ABS..FIXED_POINT_MAX_ABS,
        seed in any::<u64>(),
        counter in any::<u64>(),
        coord in 0usize..512,
        shards in 1usize..8,
    ) {
        let encoded = encode_fixed(value).unwrap();
        let sharer = SecretSharer::new(seed, shards).unwrap();
        let shares = sharer.split(counter, coord, encoded);
        prop_assert_eq!(shares.len(), shards);
        prop_assert_eq!(recombine(&shares), encoded);
        let decoded = decode_fixed(recombine(&shares));
        prop_assert!((decoded - value).abs() <= 0.5 / FIXED_POINT_SCALE);
    }

    /// The shard counts the pipeline actually runs at — k ∈ {1, 2, 4} —
    /// recombine to the *same* word for the same value, even under
    /// different mask seeds: the recombined sum is a group element,
    /// independent of both the split width and the mask lanes.
    #[test]
    fn recombined_value_is_shard_count_and_seed_independent(
        value in -FIXED_POINT_MAX_ABS..FIXED_POINT_MAX_ABS,
        counter in any::<u64>(),
        coord in 0usize..512,
        seeds in (any::<u64>(), any::<u64>(), any::<u64>()),
    ) {
        let encoded = encode_fixed(value).unwrap();
        let recombined: Vec<i128> = [1usize, 2, 4]
            .iter()
            .zip([seeds.0, seeds.1, seeds.2].iter())
            .map(|(&shards, &seed)| {
                let sharer = SecretSharer::new(seed, shards).unwrap();
                recombine(&sharer.split(counter, coord, encoded))
            })
            .collect();
        prop_assert_eq!(recombined[0], encoded);
        prop_assert_eq!(recombined[1], encoded);
        prop_assert_eq!(recombined[2], encoded);
    }

    /// Aggregator-style folding commutes with recombination: folding each
    /// shard's share stream independently and recombining the k per-shard
    /// accumulators equals the plaintext wrapping sum exactly, for any
    /// contribution stream, any shard count, and any stream order.
    #[test]
    fn per_shard_folds_recombine_to_the_plaintext_sum_in_any_order(
        values in prop::collection::vec(-FIXED_POINT_MAX_ABS..FIXED_POINT_MAX_ABS, 1..64),
        seed in any::<u64>(),
        shards in 1usize..8,
        reverse in any::<bool>(),
    ) {
        let encoded: Vec<i128> = values
            .iter()
            .map(|&v| encode_fixed(v).unwrap())
            .collect();
        let plaintext = recombine(&encoded);
        let sharer = SecretSharer::new(seed, shards).unwrap();
        let mut accumulators = vec![0i128; shards];
        let fold = |accumulators: &mut Vec<i128>, counter: u64, word: i128| {
            let shares = sharer.split(counter, 0, word);
            for (acc, share) in accumulators.iter_mut().zip(&shares) {
                *acc = acc.wrapping_add(*share);
            }
        };
        if reverse {
            for (counter, &word) in encoded.iter().enumerate().rev() {
                fold(&mut accumulators, counter as u64, word);
            }
        } else {
            for (counter, &word) in encoded.iter().enumerate() {
                fold(&mut accumulators, counter as u64, word);
            }
        }
        prop_assert_eq!(recombine(&accumulators), plaintext);
    }

    /// Out-of-range and non-finite inputs error instead of wrapping: the
    /// headroom budget documented on the codec (|encoded| ≤ 2⁶²) holds for
    /// every accepted value, and nothing beyond the range sneaks through.
    #[test]
    fn out_of_range_values_error_rather_than_wrap(
        excess in 1.0f64..1e12,
        in_range in -FIXED_POINT_MAX_ABS..FIXED_POINT_MAX_ABS,
    ) {
        prop_assert!(encode_fixed(FIXED_POINT_MAX_ABS + excess).is_err());
        prop_assert!(encode_fixed(-FIXED_POINT_MAX_ABS - excess).is_err());
        let encoded = encode_fixed(in_range).unwrap();
        prop_assert!(encoded.unsigned_abs() <= 1u128 << 62);
    }

    /// Mask lanes are pure functions of (seed, counter, coord, shard): two
    /// sharers with the same parameters produce identical shares, so any
    /// worker re-deriving a split lands on the same bytes.
    #[test]
    fn splits_are_reproducible_across_sharer_instances(
        // The vendored proptest has no i128 Arbitrary; build the full-width
        // group element from two u64 halves.
        value_halves in (any::<u64>(), any::<u64>()),
        seed in any::<u64>(),
        counter in any::<u64>(),
        coord in 0usize..512,
        shards in 1usize..8,
    ) {
        let value = ((u128::from(value_halves.0) << 64) | u128::from(value_halves.1)) as i128;
        let a = SecretSharer::new(seed, shards).unwrap();
        let b = SecretSharer::new(seed, shards).unwrap();
        prop_assert_eq!(a.split(counter, coord, value), b.split(counter, coord, value));
        // And recombination is exact even for arbitrary (not just encoded)
        // group elements — it is the group inverse of split, full stop.
        prop_assert_eq!(recombine(&a.split(counter, coord, value)), value);
    }
}

#[test]
fn non_finite_values_are_rejected() {
    for value in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        assert!(encode_fixed(value).is_err(), "{value} must be rejected");
    }
}
