//! Property-based tests for the binary-mechanism [`TreeAggregator`]: exact
//! noiseless prefixes, the O(log T) noisy-node bound, and bit-determinism of
//! releases across instances (runs) and push batching (worker counts).

use p2b_privacy::{prefix_nodes, TreeAggregator, TreeConfig};
use proptest::prelude::*;

/// Builds an aggregator and pushes `values` as 1-dimensional leaves.
fn push_all(sigma: f64, seed: u64, horizon: u64, values: &[f64]) -> TreeAggregator {
    let mut tree = TreeAggregator::new(TreeConfig::new(1, horizon, sigma, seed)).unwrap();
    for &v in values {
        tree.push(&[v]).unwrap();
    }
    tree
}

proptest! {
    /// With σ = 0 the released prefix equals the exact sequential running
    /// sum bit for bit, at every prefix length.
    #[test]
    fn noiseless_prefixes_equal_exact_running_sums(
        values in prop::collection::vec(-100.0f64..100.0, 1..200),
        seed in any::<u64>(),
    ) {
        let horizon = values.len() as u64;
        let mut tree = TreeAggregator::new(TreeConfig::new(1, horizon, 0.0, seed)).unwrap();
        let mut exact = 0.0f64;
        for &v in &values {
            tree.push(&[v]).unwrap();
            exact += v;
            let released = tree.release();
            prop_assert_eq!(
                released[0].to_bits(),
                exact.to_bits(),
                "noiseless release must be the exact running sum"
            );
        }
    }

    /// Every prefix release touches at most ⌈log₂(T+1)⌉ noisy nodes — one
    /// per set bit of the prefix length — and the nodes tile the prefix.
    #[test]
    fn prefixes_touch_at_most_log_t_nodes(t in 1u64..100_000) {
        let nodes = prefix_nodes(t);
        prop_assert_eq!(nodes.len(), t.count_ones() as usize);
        let bound = (u64::BITS - t.leading_zeros()) as usize;
        prop_assert!(
            nodes.len() <= bound,
            "{} nodes for prefix {} exceeds ceil(log2) bound {}",
            nodes.len(), t, bound
        );
        // The dyadic blocks must partition [1, t]: sizes sum to t and each
        // block size is a power of two matching its level.
        let total: u64 = nodes.iter().map(|n| 1u64 << n.level).sum();
        prop_assert_eq!(total, t);
    }

    /// The live aggregator agrees with the closed-form node decomposition.
    #[test]
    fn release_nodes_match_the_decomposition(
        count in 1usize..300,
        seed in any::<u64>(),
    ) {
        let values: Vec<f64> = (0..count).map(|i| i as f64).collect();
        let tree = push_all(1.0, seed, count as u64, &values);
        prop_assert_eq!(tree.release_nodes(), prefix_nodes(count as u64));
        prop_assert!(
            tree.release_nodes().len() <= tree.max_nodes_per_prefix() as usize
        );
    }

    /// Releases are byte-identical across independently constructed
    /// aggregators with the same seed — the "same run twice" guarantee.
    #[test]
    fn releases_are_deterministic_across_runs(
        values in prop::collection::vec(0.0f64..1.0, 1..150),
        seed in any::<u64>(),
        sigma in 0.1f64..10.0,
    ) {
        let horizon = values.len() as u64;
        let a = push_all(sigma, seed, horizon, &values);
        let b = push_all(sigma, seed, horizon, &values);
        let ra = a.release();
        let rb = b.release();
        let bits = |r: &[f64]| r.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&ra), bits(&rb));
    }

    /// Releases depend only on (seed, prefix length, values) — not on how
    /// the pushes were batched over time. This is the worker-count
    /// invariance: a curator fed by 1 or N workers in the same ingest order
    /// releases identical bytes, because noise is a pure function of the
    /// node coordinates, never of RNG state advanced elsewhere.
    #[test]
    fn releases_are_invariant_to_push_batching(
        values in prop::collection::vec(0.0f64..1.0, 2..150),
        seed in any::<u64>(),
        split in 1usize..149,
        sigma in 0.1f64..10.0,
    ) {
        let split = split.min(values.len() - 1);
        let horizon = values.len() as u64;
        // One shot.
        let direct = push_all(sigma, seed, horizon, &values);
        // Two "worker shifts": push a prefix, release mid-stream (extra
        // releases must not perturb later ones), then push the rest.
        let mut staged =
            TreeAggregator::new(TreeConfig::new(1, horizon, sigma, seed)).unwrap();
        for v in &values[..split] {
            staged.push(&[*v]).unwrap();
        }
        let _ = staged.release();
        for v in &values[split..] {
            staged.push(&[*v]).unwrap();
        }
        let da = direct.release();
        let db = staged.release();
        let bits = |r: &[f64]| r.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&da), bits(&db));
    }

    /// Different seeds decorrelate the noise (same exact sums underneath).
    #[test]
    fn different_seeds_give_different_noise(
        count in 1usize..100,
        seed in any::<u64>(),
    ) {
        let values: Vec<f64> = vec![0.5; count];
        let a = push_all(2.0, seed, count as u64, &values);
        let b = push_all(2.0, seed.wrapping_add(1), count as u64, &values);
        prop_assert!(a.release()[0].to_bits() != b.release()[0].to_bits());
    }
}

#[test]
fn multi_dimensional_releases_are_per_coordinate_running_sums() {
    // A 3-dimensional noiseless stream: every coordinate is an independent
    // exact prefix sum.
    let mut tree = TreeAggregator::new(TreeConfig::new(3, 16, 0.0, 9)).unwrap();
    let mut exact = [0.0f64; 3];
    for t in 0..16u64 {
        let leaf = [t as f64, 1.0, -0.25 * t as f64];
        tree.push(&leaf).unwrap();
        for (e, l) in exact.iter_mut().zip(leaf) {
            *e += l;
        }
        let released = tree.release();
        for (r, e) in released.iter().zip(exact) {
            assert_eq!(r.to_bits(), e.to_bits());
        }
    }
}
