//! Property-based tests for the [`ZcdpAccountant`]: additive/order-invariant
//! composition, monotonicity in ρ, a conversion never looser than pure
//! sequential composition, and exact budget boundaries.

use p2b_privacy::{
    compare_composition, pure_dp_to_rho, rho_to_epsilon, PrivacyError, PrivacyGuarantee,
    ZcdpAccountant,
};
use proptest::prelude::*;

proptest! {
    /// zCDP composition is additive, hence associative and order-invariant:
    /// any permutation and any grouping of the same spends lands on the same
    /// total ρ (up to floating-point reassociation slack).
    #[test]
    fn composition_is_order_invariant(
        rhos in prop::collection::vec(0.0f64..2.0, 1..30),
    ) {
        let mut forward = ZcdpAccountant::new();
        for &r in &rhos {
            forward.spend_rho(r, "q").unwrap();
        }
        let mut backward = ZcdpAccountant::new();
        for &r in rhos.iter().rev() {
            backward.spend_rho(r, "q").unwrap();
        }
        prop_assert!((forward.rho() - backward.rho()).abs() < 1e-9);
        prop_assert_eq!(forward.count(), backward.count());
    }

    /// The composed ρ is monotone: every spend can only increase it, by
    /// exactly the spent amount.
    #[test]
    fn rho_is_monotone_in_spends(rhos in prop::collection::vec(0.0f64..1.0, 1..40)) {
        let mut acc = ZcdpAccountant::new();
        let mut prev = 0.0f64;
        for &r in &rhos {
            acc.spend_rho(r, "q").unwrap();
            prop_assert!(acc.rho() >= prev);
            prop_assert!((acc.rho() - (prev + r)).abs() < 1e-12);
            prev = acc.rho();
        }
    }

    /// The (ε, δ) conversion is monotone in ρ: more concentrated loss never
    /// converts to a smaller ε.
    #[test]
    fn conversion_is_monotone_in_rho(
        rho in 0.0f64..50.0,
        bump in 0.001f64..5.0,
        delta in 1e-12f64..0.1,
    ) {
        let lo = rho_to_epsilon(rho, delta).unwrap();
        let hi = rho_to_epsilon(rho + bump, delta).unwrap();
        prop_assert!(hi > lo);
    }

    /// On any sequence of pure-DP spends, the accountant's ε never exceeds
    /// the pure sequential-composition total Σεᵢ — the conversion takes the
    /// min of the two valid bounds.
    #[test]
    fn never_looser_than_sequential_composition(
        epsilons in prop::collection::vec(0.0f64..2.0, 1..60),
        delta in 1e-12f64..0.1,
    ) {
        let mut acc = ZcdpAccountant::new();
        let mut pure_total = 0.0f64;
        for &e in &epsilons {
            acc.spend_guarantee(&PrivacyGuarantee::pure(e).unwrap(), "q").unwrap();
            pure_total += e;
        }
        let reported = acc.epsilon(delta).unwrap();
        prop_assert!(
            reported <= pure_total + 1e-12,
            "zCDP-accounted ε {} must not exceed pure composition {}",
            reported, pure_total
        );
    }

    /// At long horizons the zCDP route is *strictly* tighter than pure
    /// composition — the O(√k) vs O(k) separation the upgrade exists for.
    #[test]
    fn strictly_tighter_at_long_horizons(
        epsilon in 0.05f64..1.0,
        horizon in 1_000u32..50_000,
    ) {
        let cmp = compare_composition(
            PrivacyGuarantee::pure(epsilon).unwrap(),
            horizon,
            1e-6,
        )
        .unwrap();
        prop_assert!(cmp.zcdp_epsilon < cmp.pure_epsilon);
        // And the quoted zCDP ε matches the closed form (min'd with pure).
        let closed = rho_to_epsilon(cmp.rho, 1e-6).unwrap().min(cmp.pure_epsilon);
        prop_assert!((cmp.zcdp_epsilon - closed).abs() < 1e-9);
    }

    /// Budget enforcement refuses over-spending exactly at the boundary:
    /// spending to the budget succeeds, any ρ > 0 beyond it fails, and a
    /// refused spend leaves the accountant untouched.
    #[test]
    fn budget_boundary_is_exact(
        budget in 0.1f64..10.0,
        steps in 1u32..20,
        overshoot in 1e-6f64..1.0,
    ) {
        // Spending exactly to the budget in one step is accepted; the first
        // ρ > 0 beyond it is refused.
        let mut exact = ZcdpAccountant::with_budget(budget).unwrap();
        exact.spend_rho(budget, "all").unwrap();
        prop_assert_eq!(exact.remaining_rho(), Some(0.0));
        prop_assert!(matches!(
            exact.spend_rho(overshoot, "over"),
            Err(PrivacyError::BudgetExceeded { .. })
        ));

        // A refused spend leaves a partially-spent accountant untouched
        // (steps - 1 sub-budget spends stay safely below the budget even
        // with float accumulation).
        let step = budget / f64::from(steps + 1);
        let mut acc = ZcdpAccountant::with_budget(budget).unwrap();
        for _ in 0..steps {
            acc.spend_rho(step, "q").unwrap();
        }
        let count = acc.count();
        let rho = acc.rho();
        let refused = acc.spend_rho(budget, "over");
        prop_assert!(matches!(refused, Err(PrivacyError::BudgetExceeded { .. })));
        prop_assert_eq!(acc.count(), count);
        prop_assert!((acc.rho() - rho).abs() == 0.0);
    }

    /// Pure ε → ρ → (ε', δ) round trip: the recovered ε' never beats the
    /// original pure guarantee for a single spend (the conversion is exact
    /// only in the many-spend regime), and the accountant's min() therefore
    /// returns the pure ε for a single spend.
    #[test]
    fn single_spend_reports_the_pure_epsilon(
        epsilon in 0.01f64..3.0,
        delta in 1e-12f64..0.1,
    ) {
        let rho = pure_dp_to_rho(epsilon).unwrap();
        prop_assert!((rho - epsilon * epsilon / 2.0).abs() < 1e-12);
        let mut acc = ZcdpAccountant::new();
        acc.spend_guarantee(&PrivacyGuarantee::pure(epsilon).unwrap(), "q").unwrap();
        prop_assert!((acc.epsilon(delta).unwrap() - epsilon).abs() < 1e-12);
    }

    /// δ slack accumulates additively alongside ρ and is carried into the
    /// final guarantee.
    #[test]
    fn delta_slack_accumulates(
        deltas in prop::collection::vec(1e-12f64..1e-6, 1..50),
    ) {
        let mut acc = ZcdpAccountant::new();
        for &d in &deltas {
            acc.spend_guarantee(&PrivacyGuarantee::new(0.1, d).unwrap(), "q").unwrap();
        }
        let sum: f64 = deltas.iter().sum();
        prop_assert!((acc.delta_slack() - sum).abs() < 1e-15);
        let out = acc.to_guarantee(1e-9).unwrap();
        prop_assert!((out.delta() - (1e-9 + sum)).abs() < 1e-15);
    }
}
