//! Satellite tests for the privacy layer: amplification monotonicity as the
//! sampling (participation) rate drops, and crowd-blending threshold edge
//! cases at the boundaries of the crowd size.

use p2b_privacy::{
    amplified_delta, amplified_epsilon, AmplificationLedger, CrowdBlending, Participation,
    PrivacyAccountant, PrivacyGuarantee,
};

/// A descending ladder of participation rates from near-certain reporting
/// down to near-total silence.
fn descending_rates() -> Vec<f64> {
    vec![0.99, 0.9, 0.75, 0.5, 0.25, 0.1, 0.01, 0.001]
}

#[test]
fn epsilon_shrinks_as_the_sampling_rate_drops() {
    // Amplification by sub-sampling: reporting less often must never cost
    // more privacy, across both exact (ε̄ = 0) and leaky (ε̄ > 0) encoders.
    for epsilon_bar in [0.0, 0.1, 1.0] {
        let epsilons: Vec<f64> = descending_rates()
            .into_iter()
            .map(|p| amplified_epsilon(Participation::new(p).unwrap(), epsilon_bar).unwrap())
            .collect();
        for window in epsilons.windows(2) {
            assert!(
                window[1] < window[0],
                "ε must strictly shrink with the sampling rate (ε̄={epsilon_bar}): {epsilons:?}"
            );
        }
        assert!(epsilons.iter().all(|e| e.is_finite() && *e > 0.0));
    }
}

#[test]
fn delta_shrinks_as_the_sampling_rate_drops() {
    for crowd_size in [1u64, 10, 100] {
        let deltas: Vec<f64> = descending_rates()
            .into_iter()
            .map(|p| amplified_delta(Participation::new(p).unwrap(), crowd_size, 0.1).unwrap())
            .collect();
        for window in deltas.windows(2) {
            assert!(
                window[1] <= window[0],
                "δ must shrink with the sampling rate (l={crowd_size}): {deltas:?}"
            );
        }
        assert!(deltas.iter().all(|d| (0.0..=1.0).contains(d)));
    }
}

#[test]
fn amplification_approaches_no_privacy_as_p_approaches_one() {
    // As p → 1 the mechanism degenerates to always-report: ε explodes and
    // δ tends to 1 (the bound becomes vacuous).
    let nearly_one = Participation::new(1.0 - 1e-12).unwrap();
    assert!(amplified_epsilon(nearly_one, 0.0).unwrap() > 20.0);
    assert!(amplified_delta(nearly_one, 10, 0.1).unwrap() > 0.999_999);
}

#[test]
fn crowd_blending_rejects_an_empty_crowd() {
    // k = 0: a crowd of zero is meaningless and must be a constructor error,
    // not a silently-satisfied guarantee.
    assert!(CrowdBlending::exact(0).is_err());
    assert!(CrowdBlending::new(0, 0.0).is_err());
}

#[test]
fn crowd_size_one_accepts_any_batch() {
    // k = 1: every released report trivially blends with itself.
    let crowd = CrowdBlending::exact(1).unwrap();
    assert!(crowd.is_satisfied_by::<usize>(&[]));
    assert!(crowd.is_satisfied_by(&[42]));
    assert!(crowd.is_satisfied_by(&[1, 2, 3, 4, 5]));
    assert_eq!(crowd.count_violations(&[1, 2, 3]), 0);
}

#[test]
fn crowd_larger_than_population_rejects_every_code() {
    // k > population: no code can reach the required frequency, so every
    // report in the batch is a violation.
    let population = vec![7usize, 7, 7, 8, 8, 8];
    let crowd = CrowdBlending::exact(population.len() as u64 + 1).unwrap();
    assert!(!crowd.is_satisfied_by(&population));
    // Violations are counted per distinct code, and both codes fall short.
    assert_eq!(crowd.count_violations(&population), 2);
    // An empty release remains vacuously satisfied even for a huge k.
    assert!(crowd.is_satisfied_by::<usize>(&[]));
}

#[test]
fn crowd_blending_boundary_at_exact_threshold() {
    // Exactly k copies satisfy the guarantee; k - 1 copies violate it.
    let crowd = CrowdBlending::exact(3).unwrap();
    assert!(crowd.is_satisfied_by(&[5, 5, 5]));
    assert!(!crowd.is_satisfied_by(&[5, 5]));
    assert_eq!(crowd.count_violations(&[5, 5]), 1);
}

#[test]
fn legacy_pure_composition_totals_are_byte_identical() {
    // The zCDP accounting backend is additive-only: the legacy
    // PrivacyAccountant / AmplificationLedger sequential-composition path
    // must produce bit-for-bit the values it always has. These constants
    // were computed before the zCDP backend existed; any drift here means
    // the legacy path changed behavior.
    let p = Participation::new(0.5).unwrap();
    let per_report = amplified_epsilon(p, 0.0).unwrap();
    assert_eq!(per_report.to_bits(), std::f64::consts::LN_2.to_bits());

    let mut accountant = PrivacyAccountant::new();
    for _ in 0..7 {
        accountant
            .spend(PrivacyGuarantee::pure(per_report).unwrap(), "report")
            .unwrap();
    }
    // 7 × ln 2 accumulated by repeated addition, exactly as before.
    let mut expected = 0.0f64;
    for _ in 0..7 {
        expected += std::f64::consts::LN_2;
    }
    assert_eq!(accountant.total().epsilon().to_bits(), expected.to_bits());
    assert_eq!(accountant.total().delta().to_bits(), 0.0f64.to_bits());

    let mut ledger = AmplificationLedger::new(p, 0.1).unwrap();
    ledger.record_batch(100, 10).unwrap();
    ledger.record_batch(40, 3).unwrap();
    let composed = ledger.composed_over(4).unwrap();
    let weakest = ledger.weakest().unwrap().guarantee;
    let expected_delta = amplified_delta(p, 3, 0.1).unwrap();
    assert_eq!(weakest.delta().to_bits(), expected_delta.to_bits());
    assert_eq!(
        composed.epsilon().to_bits(),
        (4.0 * std::f64::consts::LN_2).to_bits()
    );
    assert_eq!(
        composed.delta().to_bits(),
        (4.0 * expected_delta).min(1.0).to_bits()
    );
}
