//! Property-based tests for the privacy analysis.

use p2b_privacy::{
    amplified_delta, amplified_epsilon, participation_for_epsilon, CrowdBlending, Participation,
    PrivacyAccountant, PrivacyGuarantee, RandomizedResponse,
};
use proptest::prelude::*;

proptest! {
    /// Equation 3 always produces a positive, finite ε for p in (0, 1).
    #[test]
    fn epsilon_is_positive_and_finite(p in 0.001f64..0.999) {
        let eps = amplified_epsilon(Participation::new(p).unwrap(), 0.0).unwrap();
        prop_assert!(eps.is_finite());
        prop_assert!(eps > 0.0);
    }

    /// ε is strictly increasing in the participation probability: sharing
    /// more often always costs more privacy.
    #[test]
    fn epsilon_is_monotone(p1 in 0.001f64..0.99, bump in 0.001f64..0.009) {
        let p2 = p1 + bump;
        let e1 = amplified_epsilon(Participation::new(p1).unwrap(), 0.0).unwrap();
        let e2 = amplified_epsilon(Participation::new(p2).unwrap(), 0.0).unwrap();
        prop_assert!(e2 > e1);
    }

    /// The closed-form inverse round-trips through Equation 3.
    #[test]
    fn participation_inverse_round_trips(target in 0.01f64..5.0) {
        let p = participation_for_epsilon(target).unwrap();
        let eps = amplified_epsilon(p, 0.0).unwrap();
        prop_assert!((eps - target).abs() < 1e-9);
    }

    /// δ lies in (0, 1] and decreases when the crowd grows.
    #[test]
    fn delta_is_a_probability_and_monotone_in_l(
        p in 0.01f64..0.99,
        l in 1u64..500,
        omega in 0.01f64..2.0,
    ) {
        let d = amplified_delta(Participation::new(p).unwrap(), l, omega).unwrap();
        let d_bigger = amplified_delta(Participation::new(p).unwrap(), l + 50, omega).unwrap();
        // delta may underflow to exactly 0.0 for very large crowds, which is fine.
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert!(d_bigger <= d);
    }

    /// Sequential composition over n identical guarantees equals n·ε exactly.
    #[test]
    fn composition_is_linear(eps in 0.0f64..2.0, n in 1u32..20) {
        let g = PrivacyGuarantee::pure(eps).unwrap();
        let composed = g.compose_n(n);
        prop_assert!((composed.epsilon() - eps * f64::from(n)).abs() < 1e-9);
    }

    /// An accountant with a budget never reports a total exceeding the budget.
    #[test]
    fn accountant_never_exceeds_budget(
        budget_eps in 0.5f64..3.0,
        spends in prop::collection::vec(0.05f64..1.0, 1..20),
    ) {
        let mut acc = PrivacyAccountant::with_budget(PrivacyGuarantee::pure(budget_eps).unwrap());
        for s in spends {
            let _ = acc.spend(PrivacyGuarantee::pure(s).unwrap(), "spend");
            prop_assert!(acc.total().epsilon() <= budget_eps + 1e-9);
        }
    }

    /// Randomized response outputs are always valid categories and the
    /// truth probability respects the ε-LDP likelihood-ratio bound.
    #[test]
    fn randomized_response_respects_ldp_bound(k in 2usize..30, eps in 0.1f64..4.0) {
        let rr = RandomizedResponse::new(k, eps).unwrap();
        let t = rr.truth_probability();
        let lie = (1.0 - t) / (k as f64 - 1.0);
        // LDP requires max/min output probability ratio <= e^eps.
        prop_assert!(t / lie <= eps.exp() + 1e-9);
    }

    /// Crowd-blending empirical verification accepts batches where every code
    /// is repeated at least l times and rejects batches with a unique code.
    #[test]
    fn crowd_blending_empirical_check(l in 2u64..6, codes in 1usize..5) {
        let cb = CrowdBlending::exact(l).unwrap();
        let mut compliant = Vec::new();
        for c in 0..codes {
            for _ in 0..l {
                compliant.push(c);
            }
        }
        prop_assert!(cb.is_satisfied_by(&compliant));
        let mut violating = compliant.clone();
        violating.push(codes + 10);
        prop_assert!(!cb.is_satisfied_by(&violating));
    }
}
