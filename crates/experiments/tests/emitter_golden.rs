//! Golden-file coverage for the JSON/CSV emitters: a tiny 2×2 matrix
//! (regimes × policies) must serialize byte-for-byte identically to the
//! checked-in goldens, and two runs of the same configuration must emit
//! byte-identical output.
//!
//! To regenerate after a deliberate behavior change:
//! `P2B_REGENERATE_GOLDEN=1 cargo test -p p2b_experiments --test emitter_golden`

use p2b_experiments::{
    matrix_to_csv, matrix_to_json, run_matrix, MatrixConfig, MatrixResult, PolicyKind,
    PrivacyRegime, ScenarioKind,
};
use std::path::PathBuf;

/// The 2×2 golden matrix: both private regimes crossed with two policies on
/// the synthetic benchmark, at a deliberately tiny scale.
fn golden_config() -> MatrixConfig {
    let mut config = MatrixConfig::smoke()
        .with_scenarios(vec![ScenarioKind::SyntheticGaussian])
        .with_regimes(vec![PrivacyRegime::LocalDp, PrivacyRegime::P2bShuffle])
        .with_policies(vec![PolicyKind::LinUcb, PolicyKind::Ucb1])
        .with_seed(97);
    config.num_users = 24;
    config.interactions_per_user = 5;
    config.record_every = 40;
    config.flush_every_reports = 8;
    config
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(name)
}

fn run_golden_matrix() -> MatrixResult {
    run_matrix(&golden_config()).expect("golden matrix runs")
}

fn check_against_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("P2B_REGENERATE_GOLDEN").is_ok() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert!(
        expected == actual,
        "{name} drifted from its golden file; if the change is deliberate, regenerate with \
         P2B_REGENERATE_GOLDEN=1 cargo test -p p2b_experiments --test emitter_golden"
    );
}

#[test]
fn tiny_matrix_json_matches_golden_and_round_trips() {
    let result = run_golden_matrix();
    let json = matrix_to_json(&result).expect("serialize");
    check_against_golden("tiny_matrix.json", &json);
    // Round trip: the emitted JSON deserializes back to the same result.
    let parsed: MatrixResult = serde_json::from_str(&json).expect("parse emitted JSON");
    assert_eq!(parsed, result);
}

#[test]
fn tiny_matrix_csv_matches_golden() {
    let result = run_golden_matrix();
    let csv = matrix_to_csv(&result);
    check_against_golden("tiny_matrix.csv", &csv);
    // Schema sanity: header plus one row per recorded point, guarantees on
    // every private row.
    let mut lines = csv.lines();
    let header = lines.next().expect("header");
    assert_eq!(
        header,
        "scenario,regime,policy,repeat,seed,round,cumulative_reward,cumulative_regret,\
         average_reward,epsilon,delta"
    );
    for line in lines {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), 11, "malformed row: {line}");
        assert!(!fields[9].is_empty(), "private cells must record epsilon");
        assert!(!fields[10].is_empty(), "private cells must record delta");
    }
}

#[test]
fn two_runs_with_the_same_seed_emit_byte_identical_output() {
    let a = run_golden_matrix();
    let b = run_golden_matrix();
    assert_eq!(
        matrix_to_json(&a).unwrap(),
        matrix_to_json(&b).unwrap(),
        "JSON emitter must be deterministic"
    );
    assert_eq!(
        matrix_to_csv(&a),
        matrix_to_csv(&b),
        "CSV emitter must be deterministic"
    );
}

#[test]
fn different_seeds_change_the_output() {
    let a = run_golden_matrix();
    let b = run_matrix(&golden_config().with_seed(98)).unwrap();
    assert_ne!(matrix_to_csv(&a), matrix_to_csv(&b));
}
