//! Golden-file coverage for the non-stationary matrix cells: the
//! drift/churn/delayed scenarios crossed with the non-private and P2B
//! regimes must serialize byte-for-byte identically to the checked-in
//! goldens, at any cell-worker count.
//!
//! To regenerate after a deliberate behavior change:
//! `P2B_REGENERATE_GOLDEN=1 cargo test -p p2b_experiments --test nonstationary_golden`

use p2b_experiments::{
    matrix_to_csv, matrix_to_json, run_matrix, MatrixConfig, MatrixResult, PolicyKind,
    PrivacyRegime, ScenarioKind,
};
use std::path::PathBuf;

/// The 3×2 golden matrix: every non-stationary scenario crossed with the
/// non-private ceiling and the P2B shuffle regime. 40 users × 5
/// interactions = 200 rounds per cell, enough to cross the drift period
/// (150) and the churn rotation period (100) at least once.
fn golden_config() -> MatrixConfig {
    let mut config = MatrixConfig::smoke()
        .with_scenarios(vec![
            ScenarioKind::SyntheticDrift,
            ScenarioKind::SyntheticChurn,
            ScenarioKind::SyntheticDelayed,
        ])
        .with_regimes(vec![PrivacyRegime::NonPrivate, PrivacyRegime::P2bShuffle])
        .with_policies(vec![PolicyKind::LinUcb])
        .with_seed(131);
    config.num_users = 40;
    config.interactions_per_user = 5;
    config.record_every = 50;
    config.flush_every_reports = 8;
    config
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(name)
}

fn run_golden_matrix() -> MatrixResult {
    run_matrix(&golden_config()).expect("non-stationary golden matrix runs")
}

fn check_against_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("P2B_REGENERATE_GOLDEN").is_ok() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert!(
        expected == actual,
        "{name} drifted from its golden file; if the change is deliberate, regenerate with \
         P2B_REGENERATE_GOLDEN=1 cargo test -p p2b_experiments --test nonstationary_golden"
    );
}

#[test]
fn nonstationary_matrix_json_matches_golden_and_round_trips() {
    let result = run_golden_matrix();
    let json = matrix_to_json(&result).expect("serialize");
    check_against_golden("tiny_nonstationary.json", &json);
    let parsed: MatrixResult = serde_json::from_str(&json).expect("parse emitted JSON");
    assert_eq!(parsed, result);
}

#[test]
fn nonstationary_matrix_csv_matches_golden() {
    let result = run_golden_matrix();
    let csv = matrix_to_csv(&result);
    check_against_golden("tiny_nonstationary.csv", &csv);
    // Every new scenario contributes regret-series rows under its key.
    for key in ["synthetic_drift", "synthetic_churn", "synthetic_delayed"] {
        assert!(
            csv.lines().any(|l| l.starts_with(key)),
            "{key} rows missing from the CSV emitter"
        );
    }
}

#[test]
fn nonstationary_cells_are_byte_deterministic_at_any_worker_count() {
    let mut serial = golden_config();
    serial.cell_workers = 1;
    let mut threaded = golden_config();
    threaded.cell_workers = 4;
    let a = run_matrix(&serial).expect("serial run");
    let b = run_matrix(&threaded).expect("threaded run");
    // The emitted JSON embeds the configuration (including `cell_workers`),
    // so worker-count invariance is pinned on the cells and the CSV series.
    assert_eq!(
        a.cells, b.cells,
        "cells must not depend on the worker count"
    );
    assert_eq!(
        matrix_to_csv(&a),
        matrix_to_csv(&b),
        "CSV must not depend on the worker count"
    );
}

#[test]
fn delayed_rewards_lose_feedback_but_still_learn() {
    let result = run_golden_matrix();
    let delayed = result
        .cell(
            ScenarioKind::SyntheticDelayed,
            PrivacyRegime::NonPrivate,
            PolicyKind::LinUcb,
        )
        .expect("delayed cell ran");
    // The lost-conversion tail means not every opportunity could share.
    let stationary_budget = delayed.rounds;
    assert!(delayed.shared_reports <= stationary_budget);
    assert!(delayed.final_cumulative_reward > 0.0);

    // Drift and churn cells keep full regret series for re-plotting.
    for kind in [ScenarioKind::SyntheticDrift, ScenarioKind::SyntheticChurn] {
        let cell = result
            .cell(kind, PrivacyRegime::P2bShuffle, PolicyKind::LinUcb)
            .expect("cell ran");
        assert!(!cell.series.is_empty());
        assert!(cell.final_cumulative_regret >= -1e-9);
        assert!(cell.epsilon.is_some(), "P2B cells report their achieved ε");
    }
}
