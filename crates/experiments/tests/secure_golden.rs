//! Golden-file coverage for the secure-aggregation regime: the full
//! five-regime axis crossed with LinUCB on the synthetic benchmark must
//! serialize byte-for-byte identically to the checked-in goldens, at *both*
//! cell worker counts 1 and 4 — pinning that the share-split/recombine
//! round trip (exact wrapping-`i128` group arithmetic, see
//! `p2b_core::SecureIngestService`) is invariant to thread scheduling at
//! the artifact level, the same bar the central-DP golden holds for its
//! counter-based noise lanes.
//!
//! The schema stays frozen: secure-aggregation rows ride the existing
//! (epsilon, delta) columns, left empty — the regime is a trust split, not
//! a DP mechanism.
//!
//! To regenerate after a deliberate behavior change:
//! `P2B_REGENERATE_GOLDEN=1 cargo test -p p2b_experiments --test secure_golden`

use p2b_experiments::{
    matrix_to_csv, matrix_to_json, run_matrix, MatrixConfig, MatrixResult, PolicyKind,
    PrivacyRegime, ScenarioKind,
};
use std::path::PathBuf;

/// The five-regime golden matrix: every privacy regime (including the
/// secure-aggregation comparison) crossed with LinUCB on the synthetic
/// benchmark, at a deliberately tiny scale.
fn golden_config() -> MatrixConfig {
    let mut config = MatrixConfig::smoke()
        .with_scenarios(vec![ScenarioKind::SyntheticGaussian])
        .with_regimes(PrivacyRegime::ALL.to_vec())
        .with_policies(vec![PolicyKind::LinUcb])
        .with_seed(151);
    config.num_users = 24;
    config.interactions_per_user = 5;
    config.record_every = 40;
    config.flush_every_reports = 8;
    config
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(name)
}

fn run_golden_matrix(cell_workers: usize) -> MatrixResult {
    let mut config = golden_config();
    config.cell_workers = cell_workers;
    run_matrix(&config).expect("golden matrix runs")
}

fn check_against_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("P2B_REGENERATE_GOLDEN").is_ok() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert!(
        expected == actual,
        "{name} drifted from its golden file; if the change is deliberate, regenerate with \
         P2B_REGENERATE_GOLDEN=1 cargo test -p p2b_experiments --test secure_golden"
    );
}

#[test]
fn tiny_secure_json_matches_golden_at_both_worker_counts() {
    let serial = run_golden_matrix(1);
    let json = matrix_to_json(&serial).expect("serialize");
    check_against_golden("tiny_secure.json", &json);
    // The same cells computed on 4 workers must be identical: recombined
    // share sums are exact group elements, never a function of scheduling.
    // (The emitted config block records the worker count, so the comparison
    // is on the cells, not the config echo.)
    let threaded = run_golden_matrix(4);
    assert_eq!(
        serial.cells, threaded.cells,
        "secure-agg cells must be identical across worker counts"
    );
    // Round trip: the emitted JSON deserializes back to the same result.
    let parsed: MatrixResult = serde_json::from_str(&json).expect("parse emitted JSON");
    assert_eq!(parsed, serial);
}

#[test]
fn tiny_secure_csv_matches_golden_at_both_worker_counts() {
    let serial = run_golden_matrix(1);
    let csv = matrix_to_csv(&serial);
    check_against_golden("tiny_secure.csv", &csv);
    let threaded = run_golden_matrix(4);
    assert_eq!(
        csv,
        matrix_to_csv(&threaded),
        "secure-agg cells must be byte-identical across worker counts"
    );
    // Schema freeze: the header is exactly the established column set — the
    // fifth regime rides the existing columns rather than widening them.
    let mut lines = csv.lines();
    assert_eq!(
        lines.next().expect("header"),
        "scenario,regime,policy,repeat,seed,round,cumulative_reward,cumulative_regret,\
         average_reward,epsilon,delta"
    );
    let mut secure_rows = 0usize;
    for line in lines {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), 11, "malformed row: {line}");
        if fields[1] == PrivacyRegime::SecureAgg.key() {
            secure_rows += 1;
            assert!(
                fields[9].is_empty() && fields[10].is_empty(),
                "secure-agg rows must not claim an (epsilon, delta): {line}"
            );
        }
    }
    assert!(secure_rows > 0, "golden must contain secure-agg rows");
}

#[test]
fn secure_golden_contains_all_five_regimes() {
    let result = run_golden_matrix(1);
    assert_eq!(PrivacyRegime::ALL.len(), 5);
    for &regime in &PrivacyRegime::ALL {
        assert!(
            result.cells.iter().any(|c| c.spec.regime == regime),
            "regime {regime} missing from the five-regime golden"
        );
    }
}
