//! Golden-file coverage for the four-regime matrix including the central-DP
//! tree-aggregation curator: the full regime axis crossed with LinUCB on the
//! synthetic benchmark must serialize byte-for-byte identically to the
//! checked-in goldens, at *both* worker counts 1 and 4 — pinning the
//! counter-based noise lanes' worker-count invariance at the artifact level.
//!
//! The pre-existing `tiny_matrix` / `tiny_nonstationary` goldens are asserted
//! untouched by the central-DP upgrade in their own suites; this file adds
//! the schema-freeze check that the emitted *header* is unchanged, so the
//! central regime rides the existing columns rather than widening the schema.
//!
//! To regenerate after a deliberate behavior change:
//! `P2B_REGENERATE_GOLDEN=1 cargo test -p p2b_experiments --test central_golden`

use p2b_experiments::{
    matrix_to_csv, matrix_to_json, run_matrix, MatrixConfig, MatrixResult, PolicyKind,
    PrivacyRegime, ScenarioKind,
};
use std::path::PathBuf;

/// The four regimes this golden has always covered. Pinned explicitly (not
/// `PrivacyRegime::ALL`) so later regime additions — like the fifth,
/// secure-aggregation regime, pinned by its own `secure_golden` suite —
/// cannot drift these checked-in files.
const GOLDEN_REGIMES: [PrivacyRegime; 4] = [
    PrivacyRegime::NonPrivate,
    PrivacyRegime::LocalDp,
    PrivacyRegime::P2bShuffle,
    PrivacyRegime::CentralDp,
];

/// The four-regime golden matrix: the original regime axis crossed with
/// LinUCB (the only policy the central curator can rebuild) on the synthetic
/// benchmark, at a deliberately tiny scale.
fn golden_config() -> MatrixConfig {
    let mut config = MatrixConfig::smoke()
        .with_scenarios(vec![ScenarioKind::SyntheticGaussian])
        .with_regimes(GOLDEN_REGIMES.to_vec())
        .with_policies(vec![PolicyKind::LinUcb])
        .with_seed(131);
    config.num_users = 24;
    config.interactions_per_user = 5;
    config.record_every = 40;
    config.flush_every_reports = 8;
    config
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(name)
}

fn run_golden_matrix(cell_workers: usize) -> MatrixResult {
    let mut config = golden_config();
    config.cell_workers = cell_workers;
    run_matrix(&config).expect("golden matrix runs")
}

fn check_against_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("P2B_REGENERATE_GOLDEN").is_ok() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert!(
        expected == actual,
        "{name} drifted from its golden file; if the change is deliberate, regenerate with \
         P2B_REGENERATE_GOLDEN=1 cargo test -p p2b_experiments --test central_golden"
    );
}

#[test]
fn tiny_central_json_matches_golden_at_both_worker_counts() {
    let serial = run_golden_matrix(1);
    let json = matrix_to_json(&serial).expect("serialize");
    check_against_golden("tiny_central.json", &json);
    // The same cells computed on 4 workers must be identical: the curator's
    // tree noise is a pure function of (seed, node, coordinate), never of
    // scheduling. (The emitted config block records the worker count, so the
    // comparison is on the cells, not the config echo.)
    let threaded = run_golden_matrix(4);
    assert_eq!(
        serial.cells, threaded.cells,
        "central-DP cells must be identical across worker counts"
    );
    // Round trip: the emitted JSON deserializes back to the same result.
    let parsed: MatrixResult = serde_json::from_str(&json).expect("parse emitted JSON");
    assert_eq!(parsed, serial);
}

#[test]
fn tiny_central_csv_matches_golden_at_both_worker_counts() {
    let serial = run_golden_matrix(1);
    let csv = matrix_to_csv(&serial);
    check_against_golden("tiny_central.csv", &csv);
    let threaded = run_golden_matrix(4);
    assert_eq!(
        csv,
        matrix_to_csv(&threaded),
        "central-DP cells must be byte-identical across worker counts"
    );
    // Schema freeze: the header is exactly the pre-central-DP column set —
    // the new regime rides the existing (epsilon, delta) columns.
    let mut lines = csv.lines();
    assert_eq!(
        lines.next().expect("header"),
        "scenario,regime,policy,repeat,seed,round,cumulative_reward,cumulative_regret,\
         average_reward,epsilon,delta"
    );
    let mut central_rows = 0usize;
    for line in lines {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), 11, "malformed row: {line}");
        if fields[1] == PrivacyRegime::CentralDp.key() {
            central_rows += 1;
            assert!(!fields[9].is_empty(), "central rows must record epsilon");
            assert!(!fields[10].is_empty(), "central rows must record delta");
        }
    }
    assert!(central_rows > 0, "golden must contain central-DP rows");
}

#[test]
fn central_golden_contains_all_four_regimes() {
    let result = run_golden_matrix(1);
    for &regime in &GOLDEN_REGIMES {
        assert!(
            result.cells.iter().any(|c| c.spec.regime == regime),
            "regime {regime} missing from the four-regime golden"
        );
    }
}
