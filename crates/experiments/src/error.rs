//! Error type for the experiment matrix harness.

use std::error::Error;
use std::fmt;

/// Error returned by the scenario-matrix harness.
#[derive(Debug)]
#[non_exhaustive]
pub enum ExperimentError {
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Description of the violated constraint.
        message: String,
    },
    /// An underlying bandit operation failed.
    Bandit(p2b_bandit::BanditError),
    /// An underlying encoding operation failed.
    Encoding(p2b_encoding::EncodingError),
    /// An underlying dataset operation failed.
    Dataset(p2b_datasets::DatasetError),
    /// An underlying privacy computation failed.
    Privacy(p2b_privacy::PrivacyError),
    /// An underlying shuffler (engine) operation failed.
    Shuffler(p2b_shuffler::ShufflerError),
    /// An underlying P2B system operation failed.
    Core(p2b_core::CoreError),
    /// An underlying simulation harness operation failed.
    Sim(p2b_sim::SimError),
    /// Writing a result file failed.
    Io(std::io::Error),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::InvalidConfig { parameter, message } => {
                write!(f, "invalid configuration for `{parameter}`: {message}")
            }
            ExperimentError::Bandit(e) => write!(f, "bandit failure: {e}"),
            ExperimentError::Encoding(e) => write!(f, "encoding failure: {e}"),
            ExperimentError::Dataset(e) => write!(f, "dataset failure: {e}"),
            ExperimentError::Privacy(e) => write!(f, "privacy failure: {e}"),
            ExperimentError::Shuffler(e) => write!(f, "shuffler failure: {e}"),
            ExperimentError::Core(e) => write!(f, "p2b system failure: {e}"),
            ExperimentError::Sim(e) => write!(f, "simulation failure: {e}"),
            ExperimentError::Io(e) => write!(f, "i/o failure: {e}"),
        }
    }
}

impl Error for ExperimentError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExperimentError::Bandit(e) => Some(e),
            ExperimentError::Encoding(e) => Some(e),
            ExperimentError::Dataset(e) => Some(e),
            ExperimentError::Privacy(e) => Some(e),
            ExperimentError::Shuffler(e) => Some(e),
            ExperimentError::Core(e) => Some(e),
            ExperimentError::Sim(e) => Some(e),
            ExperimentError::Io(e) => Some(e),
            ExperimentError::InvalidConfig { .. } => None,
        }
    }
}

impl From<p2b_bandit::BanditError> for ExperimentError {
    fn from(e: p2b_bandit::BanditError) -> Self {
        ExperimentError::Bandit(e)
    }
}

impl From<p2b_encoding::EncodingError> for ExperimentError {
    fn from(e: p2b_encoding::EncodingError) -> Self {
        ExperimentError::Encoding(e)
    }
}

impl From<p2b_datasets::DatasetError> for ExperimentError {
    fn from(e: p2b_datasets::DatasetError) -> Self {
        ExperimentError::Dataset(e)
    }
}

impl From<p2b_privacy::PrivacyError> for ExperimentError {
    fn from(e: p2b_privacy::PrivacyError) -> Self {
        ExperimentError::Privacy(e)
    }
}

impl From<p2b_shuffler::ShufflerError> for ExperimentError {
    fn from(e: p2b_shuffler::ShufflerError) -> Self {
        ExperimentError::Shuffler(e)
    }
}

impl From<p2b_core::CoreError> for ExperimentError {
    fn from(e: p2b_core::CoreError) -> Self {
        ExperimentError::Core(e)
    }
}

impl From<p2b_sim::SimError> for ExperimentError {
    fn from(e: p2b_sim::SimError) -> Self {
        ExperimentError::Sim(e)
    }
}

impl From<std::io::Error> for ExperimentError {
    fn from(e: std::io::Error) -> Self {
        ExperimentError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = ExperimentError::InvalidConfig {
            parameter: "repeats",
            message: "must be at least 1".to_owned(),
        };
        assert!(e.to_string().contains("repeats"));
        assert!(Error::source(&e).is_none());

        let e = ExperimentError::from(p2b_privacy::PrivacyError::InvalidProbability {
            name: "p",
            value: 7.0,
        });
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<ExperimentError>();
    }
}
