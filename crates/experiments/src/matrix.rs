//! The scenario-matrix driver: the cross product of
//! scenario × privacy regime × policy, executed with seeded determinism and
//! per-cell repeats.
//!
//! Every cell simulates a population of users sequentially. Each user
//! warm-starts a local policy from the current central policy (by cloning —
//! policy-agnostic), interacts for `interactions_per_user` rounds with local
//! learning, and then gets **one** reporting opportunity taken with the
//! participation probability `p` — the same cadence for every regime, so the
//! regimes differ only in *how* the shared tuple is protected:
//!
//! * **non-private** — the raw `(x, a, r)` tuple updates the central policy
//!   immediately;
//! * **LDP randomized response** — the *whole* report is randomized on-device
//!   ([`p2b_privacy::RandomizedResponse`]), the ε budget split evenly across
//!   its three components (context code over `k` categories, action over `A`,
//!   reward as a binary bit); the central policy trains on the randomized
//!   code's representative context with the randomized action and reward.
//!   This is the RAPPOR-style regime LDP bandit work operates in, and exactly
//!   the per-report noise the paper argues is too high for model training;
//! * **P2B shuffle** — the exact code is queued and periodically flushed
//!   through the sharded [`p2b_shuffler::ShufflerEngine`] (anonymize,
//!   shuffle, crowd-blending threshold); released reports update the central
//!   policy and every batch's (ε, δ) lands in an
//!   [`p2b_privacy::AmplificationLedger`];
//! * **central DP (tree aggregation)** — the raw tuple goes to a *trusted
//!   curator*, which folds it into per-arm [`p2b_privacy::TreeAggregator`]
//!   streams over the LinUCB sufficient statistics and periodically
//!   publishes a model rebuilt from the noisy prefix releases
//!   (Gaussian noise on O(log T) dyadic partial sums — the classic
//!   PrivateLinUCB baseline). Privacy cost is accounted in ρ-zCDP by a
//!   [`p2b_privacy::ZcdpAccountant`].
//! * **secure aggregation (additive shares)** — the device turns its report
//!   into a LinUCB sufficient-statistic leaf, fixed-point encodes it and
//!   additively secret-shares it across [`SECURE_AGG_SHARDS`] aggregator
//!   shards ([`p2b_core::SecureIngestService`]); the published model is
//!   rebuilt from the *recombined* per-arm sums only. No single aggregator
//!   sees a contribution in the clear, and no noise is added — utility is
//!   the non-private ceiling up to fixed-point quantization, with a trust
//!   split instead of a DP guarantee (the cell reports no (ε, δ)).
//!
//! Selection always uses the device's true context — what is privatized is
//! what reaches the central model, exactly as in the paper's architecture.

use crate::{
    AnyPolicy, ExperimentError, PolicyKind, PrivacyRegime, ScenarioData, ScenarioKind,
    ScenarioShape,
};
use p2b_bandit::{Action, ArmStatistics, CoalescedUpdate, LinUcb, LinUcbConfig};
use p2b_core::{DecisionTicket, RewardJoinBuffer, SecureIngestService};
use p2b_encoding::{ContextCode, Encoder, KMeansConfig, KMeansEncoder};
use p2b_linalg::{Matrix, Vector};
use p2b_privacy::{
    AmplificationLedger, Participation, RandomizedResponse, TreeAggregator, TreeConfig,
    ZcdpAccountant,
};
use p2b_shuffler::{splitmix64, EncodedReport, RawReport, ShufflerConfig, ShufflerEngine};
use p2b_sim::parallel_map;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Gaussian noise scale σ of every tree-aggregation node in the central-DP
/// regime.
///
/// Like the drift constants in the scenario module, the central-DP knobs are
/// documented constants rather than [`MatrixConfig`] fields: the config's
/// serialized form is schema-frozen by the emitter goldens. σ = 4 with the
/// smoke-scale horizons gives a per-stream ρ around 0.4 — an honestly noisy
/// central-DP baseline whose utility gap against P2B is the paper's point.
pub const CENTRAL_SIGMA: f64 = 4.0;

/// Target δ at which the central-DP cell's composed ρ-zCDP loss is converted
/// to an ε for reporting ([`p2b_privacy::ZcdpAccountant::epsilon`]).
pub const CENTRAL_TARGET_DELTA: f64 = 1e-6;

/// L2 sensitivity of one tree leaf in the central-DP regime: the leaf vector
/// `[vec(x xᵀ), r·x, 1]` with the context clipped to the unit ball and the
/// reward in `[0, 1]` has norm at most `√(‖x‖⁴ + r²‖x‖² + 1) ≤ √3`.
pub const CENTRAL_LEAF_SENSITIVITY: f64 = 1.732_050_807_568_877_2;

/// Aggregator shard count `k` of the secure-aggregation regime's in-cell
/// [`p2b_core::SecureIngestService`].
///
/// A documented constant rather than a [`MatrixConfig`] field for the same
/// schema-freeze reason as [`CENTRAL_SIGMA`]. The value is immaterial to the
/// results: recombined share sums are exact wrapping-`i128` group elements,
/// so cell output is bit-identical at any `k` (the secure-agg golden pins
/// `k = 2` against the checked-in files, and the bench ingest stage asserts
/// digest equality across `k ∈ {1, 2, 4}` on every run).
pub const SECURE_AGG_SHARDS: usize = 2;

/// Configuration of one matrix run: the three axes plus the shared workload,
/// privacy and accounting knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixConfig {
    /// Scenario axis (workloads).
    pub scenarios: Vec<ScenarioKind>,
    /// Privacy-regime axis.
    pub regimes: Vec<PrivacyRegime>,
    /// Policy axis.
    pub policies: Vec<PolicyKind>,
    /// Independent repeats per cell (each with its own derived seed).
    pub repeats: u32,
    /// Users simulated per cell.
    pub num_users: usize,
    /// Local interactions `T` per user.
    pub interactions_per_user: u64,
    /// Shape parameters of the workloads.
    pub shape: ScenarioShape,
    /// Number of encoder codes `k` shared by both private regimes.
    pub num_codes: usize,
    /// Contexts sampled to fit the k-means encoder.
    pub encoder_corpus_size: usize,
    /// Participation probability `p` (reporting opportunities taken).
    pub participation: f64,
    /// Budget ε of the LDP randomized-response baseline.
    pub ldp_epsilon: f64,
    /// Crowd-blending threshold `l` enforced by the shuffler.
    pub shuffler_threshold: usize,
    /// Shard workers of the shuffler engine (1 keeps cells bit-deterministic).
    pub shuffler_shards: usize,
    /// Merged batch size delivered by the engine.
    pub shuffler_batch_size: usize,
    /// Flush queued P2B reports through the engine whenever this many are
    /// pending (and once more at the end of the cell).
    pub flush_every_reports: usize,
    /// δ-bound constant Ω of the amplification ledger.
    pub delta_omega: f64,
    /// LinUCB exploration parameter α.
    pub alpha: f64,
    /// Record a series point every this many rounds (the final round is
    /// always recorded).
    pub record_every: u64,
    /// Worker threads for running cells in parallel (cells are independent
    /// and individually seeded, so results are identical at any count).
    pub cell_workers: usize,
    /// Base seed; every cell derives its own seed from it.
    pub seed: u64,
}

impl MatrixConfig {
    /// The default matrix: every scenario and regime, the paper's LinUCB
    /// policy, laptop-friendly sizes.
    #[must_use]
    pub fn new() -> Self {
        Self {
            scenarios: ScenarioKind::ALL.to_vec(),
            regimes: PrivacyRegime::ALL.to_vec(),
            policies: vec![PolicyKind::LinUcb],
            repeats: 1,
            num_users: 400,
            interactions_per_user: 10,
            shape: ScenarioShape::default(),
            num_codes: 32,
            encoder_corpus_size: 1024,
            participation: 0.5,
            ldp_epsilon: 0.5,
            shuffler_threshold: 2,
            shuffler_shards: 1,
            shuffler_batch_size: 256,
            flush_every_reports: 64,
            delta_omega: 0.1,
            alpha: 1.0,
            record_every: 100,
            cell_workers: 4,
            seed: 0,
        }
    }

    /// A CI-sized smoke matrix: tiny rounds/users, every axis still exercised.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            num_users: 120,
            interactions_per_user: 5,
            shape: ScenarioShape {
                logged_instances: 128,
                ..ScenarioShape::default()
            },
            num_codes: 16,
            encoder_corpus_size: 256,
            flush_every_reports: 24,
            shuffler_batch_size: 64,
            record_every: 50,
            ..Self::new()
        }
    }

    /// Sets the scenario axis.
    #[must_use]
    pub fn with_scenarios(mut self, scenarios: Vec<ScenarioKind>) -> Self {
        self.scenarios = scenarios;
        self
    }

    /// Sets the privacy-regime axis.
    #[must_use]
    pub fn with_regimes(mut self, regimes: Vec<PrivacyRegime>) -> Self {
        self.regimes = regimes;
        self
    }

    /// Sets the policy axis.
    #[must_use]
    pub fn with_policies(mut self, policies: Vec<PolicyKind>) -> Self {
        self.policies = policies;
        self
    }

    /// Sets the per-cell repeat count.
    #[must_use]
    pub fn with_repeats(mut self, repeats: u32) -> Self {
        self.repeats = repeats;
        self
    }

    /// Sets the base seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether a (regime, policy) combination is runnable: the central-DP
    /// curator and the secure-aggregation service both traffic in *LinUCB
    /// sufficient statistics*, so they only serve [`PolicyKind::LinUcb`];
    /// every other regime is policy-agnostic.
    #[must_use]
    pub fn cell_supported(regime: PrivacyRegime, policy: PolicyKind) -> bool {
        !matches!(
            regime,
            PrivacyRegime::CentralDp | PrivacyRegime::SecureAgg
        ) || policy == PolicyKind::LinUcb
    }

    /// Total number of cells the matrix will run (unsupported
    /// regime × policy combinations are skipped, see
    /// [`MatrixConfig::cell_supported`]).
    #[must_use]
    pub fn num_cells(&self) -> usize {
        let regime_policy: usize = self
            .regimes
            .iter()
            .map(|&r| {
                self.policies
                    .iter()
                    .filter(|&&p| Self::cell_supported(r, p))
                    .count()
            })
            .sum();
        self.scenarios.len() * regime_policy * self.repeats as usize
    }

    fn validate(&self) -> Result<(), ExperimentError> {
        if self.scenarios.is_empty() || self.regimes.is_empty() || self.policies.is_empty() {
            return Err(ExperimentError::InvalidConfig {
                parameter: "axes",
                message: "scenarios, regimes and policies must all be non-empty".to_owned(),
            });
        }
        if self.repeats == 0 {
            return Err(ExperimentError::InvalidConfig {
                parameter: "repeats",
                message: "must be at least 1".to_owned(),
            });
        }
        if self.num_users == 0 || self.interactions_per_user == 0 {
            return Err(ExperimentError::InvalidConfig {
                parameter: "num_users/interactions_per_user",
                message: "must both be at least 1".to_owned(),
            });
        }
        if self.num_codes < 2 {
            return Err(ExperimentError::InvalidConfig {
                parameter: "num_codes",
                message: "must be at least 2 (randomized response needs k >= 2)".to_owned(),
            });
        }
        if self.encoder_corpus_size < self.num_codes {
            return Err(ExperimentError::InvalidConfig {
                parameter: "encoder_corpus_size",
                message: format!(
                    "must be at least num_codes ({}), got {}",
                    self.num_codes, self.encoder_corpus_size
                ),
            });
        }
        if self.flush_every_reports == 0 || self.shuffler_batch_size == 0 {
            return Err(ExperimentError::InvalidConfig {
                parameter: "flush_every_reports/shuffler_batch_size",
                message: "must both be at least 1".to_owned(),
            });
        }
        if self.record_every == 0 {
            return Err(ExperimentError::InvalidConfig {
                parameter: "record_every",
                message: "must be at least 1".to_owned(),
            });
        }
        // Participation, ε and Ω are validated by the privacy crate's own
        // constructors at cell start; fail fast here for clearer messages.
        // The LDP budget only constrains configs that actually run the
        // LocalDp regime.
        Participation::new(self.participation)?;
        if self.regimes.contains(&PrivacyRegime::LocalDp) {
            LocalDpRandomizer::new(self.num_codes, 2, self.ldp_epsilon)?;
        }
        if self.regimes.contains(&PrivacyRegime::CentralDp)
            && !self.policies.contains(&PolicyKind::LinUcb)
        {
            return Err(ExperimentError::InvalidConfig {
                parameter: "regimes/policies",
                message: "the central-DP regime releases LinUCB sufficient statistics and needs \
                          PolicyKind::LinUcb on the policy axis"
                    .to_owned(),
            });
        }
        if self.regimes.contains(&PrivacyRegime::SecureAgg)
            && !self.policies.contains(&PolicyKind::LinUcb)
        {
            return Err(ExperimentError::InvalidConfig {
                parameter: "regimes/policies",
                message: "the secure-aggregation regime aggregates LinUCB sufficient statistics \
                          and needs PolicyKind::LinUcb on the policy axis"
                    .to_owned(),
            });
        }
        Ok(())
    }
}

impl Default for MatrixConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Identity of one matrix cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CellSpec {
    /// The workload of this cell.
    pub scenario: ScenarioKind,
    /// The privacy regime of this cell.
    pub regime: PrivacyRegime,
    /// The bandit policy of this cell.
    pub policy: PolicyKind,
    /// Zero-based repeat index.
    pub repeat: u32,
    /// The derived seed this cell ran with.
    pub seed: u64,
}

/// One recorded point of a cell's per-round series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundPoint {
    /// One-based global round index.
    pub round: u64,
    /// Cumulative realized reward up to this round.
    pub cumulative_reward: f64,
    /// Cumulative pseudo-regret (vs. per-round expected optimum) up to this
    /// round.
    pub cumulative_regret: f64,
    /// Average realized reward per round so far (CTR for click workloads).
    pub average_reward: f64,
}

/// Everything one cell produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// The cell's identity (axes, repeat, derived seed).
    pub spec: CellSpec,
    /// Total simulated rounds.
    pub rounds: u64,
    /// Final cumulative realized reward.
    pub final_cumulative_reward: f64,
    /// Final cumulative pseudo-regret.
    pub final_cumulative_regret: f64,
    /// Average realized reward per round (CTR for click workloads).
    pub average_reward: f64,
    /// Reports that updated the central policy (released reports for P2B).
    pub shared_reports: u64,
    /// Reports submitted toward the central policy before thresholding
    /// (equals `shared_reports` outside P2B).
    pub submitted_reports: u64,
    /// The per-report ε achieved by the regime: `None` for non-private,
    /// the configured LDP budget for randomized response, Equation 3's
    /// amplified ε for P2B.
    pub epsilon: Option<f64>,
    /// The δ achieved by the regime: `None` for non-private, 0 for pure-LDP
    /// randomized response, the weakest released batch's δ from the
    /// amplification ledger for P2B.
    pub delta: Option<f64>,
    /// Per-batch (ε, δ) records from the shuffler engine (P2B cells only).
    pub batch_guarantees: Vec<BatchGuarantee>,
    /// The recorded per-round series.
    pub series: Vec<RoundPoint>,
}

/// A flattened [`p2b_privacy::BatchAmplification`] record for result files.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchGuarantee {
    /// Delivery index of the batch within the cell.
    pub batch_index: u64,
    /// Reports the batch released after thresholding.
    pub released: usize,
    /// Empirical crowd size of the batch.
    pub crowd_size: u64,
    /// The batch's ε.
    pub epsilon: f64,
    /// The batch's δ.
    pub delta: f64,
}

/// The full output of one matrix run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixResult {
    /// The configuration the matrix ran with.
    pub config: MatrixConfig,
    /// One result per cell, in axis order
    /// (scenario-major, then regime, policy, repeat).
    pub cells: Vec<CellResult>,
}

impl MatrixResult {
    /// Looks up the first cell matching the given axes.
    #[must_use]
    pub fn cell(
        &self,
        scenario: ScenarioKind,
        regime: PrivacyRegime,
        policy: PolicyKind,
    ) -> Option<&CellResult> {
        self.cells.iter().find(|c| {
            c.spec.scenario == scenario && c.spec.regime == regime && c.spec.policy == policy
        })
    }
}

/// The delivery delay of one interaction's reward, deterministic in
/// `(cell seed, user, interaction)`. With a zero join window rewards land
/// in-round; otherwise delays are uniform over `[0, max_delay + 1]`, and
/// the `max_delay + 1` case never delivers — the lost-conversion tail that
/// exercises decision expiry.
fn delivery_delay(seed: u64, user: u64, t: u64, max_delay: u64) -> Option<u64> {
    if max_delay == 0 {
        return Some(0);
    }
    let mix = splitmix64(
        seed ^ user
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(t.wrapping_mul(0xA24B_AED4_963E_E407)),
    );
    let delay = mix % (max_delay + 2);
    (delay <= max_delay).then_some(delay)
}

fn cell_seed(base: u64, scenario: usize, regime: usize, policy: usize, repeat: u32) -> u64 {
    let mut seed = splitmix64(base);
    for component in [
        scenario as u64,
        regime as u64,
        policy as u64,
        u64::from(repeat),
    ] {
        seed = splitmix64(seed ^ component.wrapping_mul(0xA24B_AED4_963E_E407));
    }
    seed
}

/// Runs the full cross product of the configured axes and returns every
/// cell's result, in axis order.
///
/// Cells are independent and individually seeded, so they run on
/// [`MatrixConfig::cell_workers`] threads with results identical to a serial
/// run — two invocations with the same configuration produce identical
/// [`MatrixResult`]s bit for bit.
///
/// # Errors
///
/// Returns [`ExperimentError::InvalidConfig`] for invalid configurations and
/// propagates the first failing cell's error.
pub fn run_matrix(config: &MatrixConfig) -> Result<MatrixResult, ExperimentError> {
    config.validate()?;
    let mut specs = Vec::with_capacity(config.num_cells());
    for (si, &scenario) in config.scenarios.iter().enumerate() {
        for (ri, &regime) in config.regimes.iter().enumerate() {
            for (pi, &policy) in config.policies.iter().enumerate() {
                if !MatrixConfig::cell_supported(regime, policy) {
                    continue;
                }
                for repeat in 0..config.repeats {
                    specs.push(CellSpec {
                        scenario,
                        regime,
                        policy,
                        repeat,
                        seed: cell_seed(config.seed, si, ri, pi, repeat),
                    });
                }
            }
        }
    }
    let results = parallel_map(specs, config.cell_workers, |spec| run_cell(config, spec));
    let cells = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(MatrixResult {
        config: config.clone(),
        cells,
    })
}

/// Runs one cell of the matrix.
///
/// # Errors
///
/// Propagates workload, policy, encoder, privacy and engine errors.
pub fn run_cell(config: &MatrixConfig, spec: CellSpec) -> Result<CellResult, ExperimentError> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut scenario = ScenarioData::build(spec.scenario, &config.shape, &mut rng)?;
    let dimension = scenario.context_dimension();
    let num_actions = scenario.num_actions();

    let mut central = spec.policy.build(dimension, num_actions, config.alpha)?;
    let encoder = if spec.regime.uses_encoder() {
        let corpus = scenario.encoder_corpus(config.encoder_corpus_size, &mut rng);
        Some(KMeansEncoder::fit(
            &corpus,
            KMeansConfig::new(config.num_codes).with_iterations(20),
            &mut rng,
        )?)
    } else {
        None
    };
    let randomizer = match spec.regime {
        PrivacyRegime::LocalDp => Some(LocalDpRandomizer::new(
            config.num_codes,
            num_actions,
            config.ldp_epsilon,
        )?),
        _ => None,
    };
    let mut curator = match spec.regime {
        PrivacyRegime::CentralDp => {
            if spec.policy != PolicyKind::LinUcb {
                return Err(ExperimentError::InvalidConfig {
                    parameter: "policy",
                    message: format!(
                        "the central-DP regime only serves LinUCB sufficient statistics, got {}",
                        spec.policy
                    ),
                });
            }
            Some(CentralCurator::new(
                dimension,
                num_actions,
                config.alpha,
                config.num_users as u64,
                spec.seed,
            )?)
        }
        _ => None,
    };
    let mut curator_pending = 0usize;
    let mut secure = match spec.regime {
        PrivacyRegime::SecureAgg => {
            if spec.policy != PolicyKind::LinUcb {
                return Err(ExperimentError::InvalidConfig {
                    parameter: "policy",
                    message: format!(
                        "the secure-aggregation regime only serves LinUCB sufficient statistics, \
                         got {}",
                        spec.policy
                    ),
                });
            }
            Some(SecureIngestService::new(
                LinUcbConfig::new(dimension, num_actions).with_alpha(config.alpha),
                SECURE_AGG_SHARDS,
                spec.seed,
            )?)
        }
        _ => None,
    };
    let mut secure_pending = 0usize;
    let participation = Participation::new(config.participation)?;
    let mut ledger = AmplificationLedger::new(participation, config.delta_omega)?;

    let total_rounds = config.num_users as u64 * config.interactions_per_user;
    let mut series = Vec::with_capacity((total_rounds / config.record_every + 2) as usize);
    let mut cumulative_reward = 0.0f64;
    let mut cumulative_regret = 0.0f64;
    let mut round = 0u64;
    let mut shared_reports = 0u64;
    let mut submitted_reports = 0u64;
    let mut pending: Vec<RawReport> = Vec::new();
    let mut epoch = 0u64;

    let max_delay = spec.scenario.max_reward_delay();
    for user in 0..config.num_users {
        // Policy-agnostic warm start: the device begins from a clone of the
        // current central policy (the paper's model-snapshot warm start).
        let mut local = central.clone();
        // Local learning flows through a delayed-reward join buffer. With a
        // zero window — every stationary scenario — each reward joins in
        // its own round and the fold is exactly the historical immediate
        // update (the emitter goldens pin this); the delayed scenario joins
        // rewards up to `max_delay` rounds late and loses the overflow.
        let mut joiner: RewardJoinBuffer<(Vector, Action)> = RewardJoinBuffer::new(max_delay);
        let horizon = config.interactions_per_user + max_delay + 1;
        let mut deliveries: Vec<Vec<(DecisionTicket, f64)>> = vec![Vec::new(); horizon as usize];
        let mut last_joined: Option<(Vector, Action, f64)> = None;
        for t in 0..horizon {
            if t < config.interactions_per_user {
                let round_data = scenario.next_round(&mut rng);
                let action = local.select_action(&round_data.context, &mut rng)?;
                let reward = scenario.sample_reward(&round_data, action.index(), &mut rng)?;
                let expected = scenario.expected_reward(&round_data, action.index())?;
                let optimum = scenario.optimal_reward(&round_data)?;
                cumulative_reward += reward;
                cumulative_regret += optimum - expected;
                round += 1;
                if round % config.record_every == 0 {
                    series.push(point(round, cumulative_reward, cumulative_regret));
                }
                let ticket = joiner.record((round_data.context, action));
                if let Some(delay) = delivery_delay(spec.seed, user as u64, t, max_delay) {
                    deliveries[(t + delay) as usize].push((ticket, reward));
                }
            }
            for (ticket, reward) in deliveries[t as usize].drain(..) {
                joiner.join(ticket, reward)?;
            }
            for joined in joiner.advance_round().joined {
                let (context, action) = joined.payload;
                local.update(&context, action, joined.reward)?;
                last_joined = Some((context, action, joined.reward));
            }
        }

        // One reporting opportunity per user, taken with probability p —
        // the same data budget for every regime. Only an interaction whose
        // reward actually arrived can be shared: the device never learned
        // the outcome of the others.
        let opportunity = rng.gen::<f64>() < participation.value();
        if let (true, Some((context, action, reward))) = (opportunity, last_joined) {
            submitted_reports += 1;
            match spec.regime {
                PrivacyRegime::NonPrivate => {
                    central.update(&context, action, reward)?;
                    shared_reports += 1;
                }
                PrivacyRegime::LocalDp => {
                    let encoder = encoder.as_ref().expect("LocalDp builds an encoder");
                    let randomizer = randomizer.as_ref().expect("LocalDp builds a randomizer");
                    let code = encoder.encode(&context)?;
                    let (noisy_code, noisy_action, noisy_reward) = randomizer.randomize_report(
                        code.value(),
                        action.index(),
                        reward,
                        &mut rng,
                    )?;
                    let representative = encoder.representative(ContextCode::new(noisy_code))?;
                    central.update(
                        &representative,
                        p2b_bandit::Action::new(noisy_action),
                        noisy_reward,
                    )?;
                    shared_reports += 1;
                }
                PrivacyRegime::P2bShuffle => {
                    let encoder = encoder.as_ref().expect("P2bShuffle builds an encoder");
                    let code = encoder.encode(&context)?;
                    pending.push(RawReport::new(
                        format!("user-{user}"),
                        EncodedReport::new(code.value(), action.index(), reward)?,
                    ));
                }
                PrivacyRegime::CentralDp => {
                    let curator = curator.as_mut().expect("CentralDp builds a curator");
                    curator.ingest(&context, action, reward)?;
                    curator_pending += 1;
                    shared_reports += 1;
                }
                PrivacyRegime::SecureAgg => {
                    let service = secure.as_mut().expect("SecureAgg builds a service");
                    // One report is a coalesced group of count 1; the
                    // service clips the context and clamps the reward
                    // exactly as the central-DP curator does.
                    let update =
                        CoalescedUpdate::new(context, action, 1, reward.clamp(0.0, 1.0))?;
                    service.ingest(&update)?;
                    secure_pending += 1;
                    shared_reports += 1;
                }
            }
        }

        if spec.regime == PrivacyRegime::CentralDp && curator_pending >= config.flush_every_reports
        {
            let curator = curator.as_ref().expect("CentralDp builds a curator");
            central = AnyPolicy::LinUcb(curator.publish()?);
            curator_pending = 0;
        }

        if spec.regime == PrivacyRegime::SecureAgg && secure_pending >= config.flush_every_reports {
            let service = secure.as_mut().expect("SecureAgg builds a service");
            central = AnyPolicy::LinUcb(service.assemble()?);
            secure_pending = 0;
        }

        if spec.regime == PrivacyRegime::P2bShuffle && pending.len() >= config.flush_every_reports {
            shared_reports += flush_through_engine(
                config,
                spec.seed ^ splitmix64(epoch.wrapping_add(1)),
                &mut pending,
                &mut central,
                encoder.as_ref().expect("P2bShuffle builds an encoder"),
                &mut ledger,
            )?;
            epoch += 1;
        }
    }

    if spec.regime == PrivacyRegime::P2bShuffle && !pending.is_empty() {
        shared_reports += flush_through_engine(
            config,
            spec.seed ^ splitmix64(epoch.wrapping_add(1)),
            &mut pending,
            &mut central,
            encoder.as_ref().expect("P2bShuffle builds an encoder"),
            &mut ledger,
        )?;
    }

    if series.last().map(|p| p.round) != Some(round) {
        series.push(point(round, cumulative_reward, cumulative_regret));
    }

    let (epsilon, delta) = match spec.regime {
        PrivacyRegime::NonPrivate => (None, None),
        PrivacyRegime::LocalDp => (Some(config.ldp_epsilon), Some(0.0)),
        PrivacyRegime::P2bShuffle => (
            Some(ledger.per_report_epsilon()),
            Some(ledger.weakest().map_or(0.0, |w| w.guarantee.delta())),
        ),
        PrivacyRegime::CentralDp => {
            let curator = curator.as_ref().expect("CentralDp builds a curator");
            (Some(curator.epsilon()?), Some(CENTRAL_TARGET_DELTA))
        }
        // A trust split, not a DP mechanism: there is no (ε, δ) to report.
        PrivacyRegime::SecureAgg => (None, None),
    };
    let batch_guarantees = ledger
        .records()
        .iter()
        .map(|r| BatchGuarantee {
            batch_index: r.batch_index,
            released: r.released,
            crowd_size: r.crowd_size,
            epsilon: r.guarantee.epsilon(),
            delta: r.guarantee.delta(),
        })
        .collect();

    Ok(CellResult {
        spec,
        rounds: round,
        final_cumulative_reward: cumulative_reward,
        final_cumulative_regret: cumulative_regret,
        average_reward: if round == 0 {
            0.0
        } else {
            cumulative_reward / round as f64
        },
        shared_reports,
        submitted_reports,
        epsilon,
        delta,
        batch_guarantees,
        series,
    })
}

/// On-device randomizer of the LDP baseline: the full `(y, a, r)` report is
/// ε-LDP by composition, the budget split evenly across the context code
/// (k-ary randomized response), the action (A-ary) and the reward (the
/// reward in `[0, 1]` is sampled to a bit, then the bit is flipped by binary
/// randomized response). This is what a RAPPOR-style collector actually
/// receives — and why the paper argues per-report LDP noise is too high to
/// train a shared model from.
#[derive(Debug, Clone, Copy)]
struct LocalDpRandomizer {
    code: RandomizedResponse,
    action: RandomizedResponse,
    reward: RandomizedResponse,
}

impl LocalDpRandomizer {
    fn new(num_codes: usize, num_actions: usize, epsilon: f64) -> Result<Self, ExperimentError> {
        if num_actions < 2 {
            return Err(ExperimentError::InvalidConfig {
                parameter: "num_actions",
                message: "the LDP baseline needs at least 2 actions".to_owned(),
            });
        }
        let per_component = epsilon / 3.0;
        Ok(Self {
            code: RandomizedResponse::new(num_codes.max(2), per_component)?,
            action: RandomizedResponse::new(num_actions, per_component)?,
            reward: RandomizedResponse::new(2, per_component)?,
        })
    }

    fn randomize_report(
        &self,
        code: usize,
        action: usize,
        reward: f64,
        rng: &mut StdRng,
    ) -> Result<(usize, usize, f64), ExperimentError> {
        let noisy_code = self.code.randomize(code, rng)?;
        let noisy_action = self.action.randomize(action, rng)?;
        let reward_bit = usize::from(rng.gen::<f64>() < reward.clamp(0.0, 1.0));
        let noisy_reward = self.reward.randomize(reward_bit, rng)? as f64;
        Ok((noisy_code, noisy_action, noisy_reward))
    }
}

/// The trusted curator of the central-DP regime.
///
/// It keeps one [`TreeAggregator`] per arm over leaf vectors
/// `[vec(x xᵀ), r·x, 1]` (dimension `d² + d + 1`), with contexts clipped to
/// the unit L2 ball so one leaf has sensitivity at most
/// [`CENTRAL_LEAF_SENSITIVITY`]. A published model is rebuilt from the noisy
/// prefix releases: the Gram block is symmetrized and ridge-shifted until
/// the design matrix is positive definite (Shariff & Sheffet 2018's
/// shifted-regularizer repair), then folded into a fresh [`LinUcb`] via
/// [`LinUcb::from_sufficient_statistics`].
///
/// Privacy accounting is the binary mechanism's: one user's single report is
/// a single leaf, covered by at most `nodes_per_leaf` noisy partial sums, so
/// the *entire* release stream costs
/// `ρ = nodes_per_leaf · Δ² / (2σ²)` — charged once to the
/// [`ZcdpAccountant`] at construction, independent of how many snapshots are
/// published. All noise is counter-based ([`TreeAggregator::node_noise`]),
/// so cells stay bit-deterministic at any worker count.
struct CentralCurator {
    config: LinUcbConfig,
    trees: Vec<TreeAggregator>,
    accountant: ZcdpAccountant,
    ingested: u64,
}

impl CentralCurator {
    fn new(
        dimension: usize,
        num_actions: usize,
        alpha: f64,
        horizon: u64,
        seed: u64,
    ) -> Result<Self, ExperimentError> {
        let leaf_dim = dimension * dimension + dimension + 1;
        let trees = (0..num_actions)
            .map(|arm| {
                TreeAggregator::new(TreeConfig::new(
                    leaf_dim,
                    horizon,
                    CENTRAL_SIGMA,
                    splitmix64(seed ^ (arm as u64).wrapping_mul(0xA24B_AED4_963E_E407)),
                ))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let mut accountant = ZcdpAccountant::new();
        // The whole stream's cost is fixed upfront by (σ, T): every leaf is
        // covered by at most nodes_per_leaf noisy nodes, regardless of how
        // many prefixes are later released.
        let rho = trees[0].rho_per_leaf(CENTRAL_LEAF_SENSITIVITY)?;
        accountant.spend_rho(rho, "tree_stream")?;
        Ok(Self {
            config: LinUcbConfig::new(dimension, num_actions).with_alpha(alpha),
            trees,
            accountant,
            ingested: 0,
        })
    }

    /// Folds one raw report into the chosen arm's statistics stream.
    fn ingest(
        &mut self,
        context: &Vector,
        action: Action,
        reward: f64,
    ) -> Result<(), ExperimentError> {
        let d = self.config.context_dimension;
        let norm = context.norm2();
        let scale = if norm > 1.0 { 1.0 / norm } else { 1.0 };
        let mut leaf = vec![0.0f64; d * d + d + 1];
        for i in 0..d {
            let xi = context[i] * scale;
            for j in 0..d {
                leaf[i * d + j] = xi * (context[j] * scale);
            }
            leaf[d * d + i] = reward.clamp(0.0, 1.0) * xi;
        }
        leaf[d * d + d] = 1.0;
        self.trees[action.index()].push(&leaf)?;
        self.ingested += 1;
        Ok(())
    }

    /// Rebuilds a servable model from the current noisy prefix releases.
    fn publish(&self) -> Result<LinUcb, ExperimentError> {
        let d = self.config.context_dimension;
        let mut statistics = Vec::with_capacity(self.trees.len());
        for tree in &self.trees {
            let release = tree.release();
            let mut gram = Matrix::zeros(d, d);
            for i in 0..d {
                for j in 0..d {
                    // Symmetrize: noise is not symmetric even though x xᵀ is.
                    gram.set(i, j, (release[i * d + j] + release[j * d + i]) / 2.0);
                }
            }
            let reward_vector = Vector::from(release[d * d..d * d + d].to_vec());
            let pulls = release[d * d + d].round().max(0.0) as u64;
            // Escalating ridge shift until the noisy Gram is positive
            // definite; doubling terminates quickly because the shift soon
            // dominates the largest negative eigenvalue.
            let mut boost = 0.0f64;
            let statistics_for_arm = loop {
                let mut design = gram.clone();
                for i in 0..d {
                    design.set(i, i, design.get(i, i) + self.config.regularizer + boost);
                }
                match p2b_linalg::RankOneInverse::from_matrix(&design) {
                    Ok(_) => {
                        break ArmStatistics {
                            design,
                            reward_vector: reward_vector.clone(),
                            pulls,
                        }
                    }
                    Err(e) if boost < 1e12 => {
                        let _ = e;
                        boost = if boost == 0.0 { 1.0 } else { boost * 2.0 };
                    }
                    Err(e) => return Err(p2b_bandit::BanditError::from(e).into()),
                }
            };
            statistics.push(statistics_for_arm);
        }
        Ok(LinUcb::from_sufficient_statistics(
            self.config,
            &statistics,
        )?)
    }

    /// The (ε at [`CENTRAL_TARGET_DELTA`]) of the whole release stream.
    fn epsilon(&self) -> Result<f64, ExperimentError> {
        Ok(self.accountant.epsilon(CENTRAL_TARGET_DELTA)?)
    }
}

fn point(round: u64, cumulative_reward: f64, cumulative_regret: f64) -> RoundPoint {
    RoundPoint {
        round,
        cumulative_reward,
        cumulative_regret,
        average_reward: cumulative_reward / round as f64,
    }
}

/// Flushes the pending reports through a freshly spawned shuffler engine,
/// folds every released report into the central policy (as the representative
/// context of its code) and merges the engine's per-batch (ε, δ) records into
/// the cell ledger. Returns the number of released reports.
///
/// The representative context is memoized per flush, mirroring the central
/// model service's coalescing ingester (`p2b_core`): codes repeat heavily
/// within a released batch, so the encoder lookup runs once per distinct
/// code instead of once per report. (The per-report *update* order is kept —
/// `AnyPolicy` is policy-agnostic and not every policy folds coalesced
/// sufficient statistics — so cell results are byte-identical to the
/// pre-memoization harness.)
fn flush_through_engine(
    config: &MatrixConfig,
    seed: u64,
    pending: &mut Vec<RawReport>,
    central: &mut AnyPolicy,
    encoder: &KMeansEncoder,
    ledger: &mut AmplificationLedger,
) -> Result<u64, ExperimentError> {
    let engine = ShufflerEngine::builder(ShufflerConfig::new(config.shuffler_threshold))
        .shards(config.shuffler_shards)
        .batch_size(config.shuffler_batch_size)
        .privacy_accounting(ledger.participation(), config.delta_omega)
        .build()?;
    let handle = engine.spawn(seed);
    for report in pending.drain(..) {
        handle.submit(report)?;
    }
    let output = handle.finish();
    let mut released = 0u64;
    let mut representatives: HashMap<usize, Vector> = HashMap::new();
    for batch in &output.batches {
        for report in batch.batch.reports() {
            let representative = match representatives.entry(report.code()) {
                Entry::Occupied(entry) => entry.into_mut(),
                Entry::Vacant(entry) => {
                    entry.insert(encoder.representative(ContextCode::new(report.code()))?)
                }
            };
            central.update(
                representative,
                p2b_bandit::Action::new(report.action()),
                report.reward(),
            )?;
            released += 1;
        }
        let stats = batch.batch.stats();
        let crowd = batch.amplification.map_or(0, |a| a.crowd_size);
        ledger.record_batch(stats.released, crowd)?;
    }
    Ok(released)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MatrixConfig {
        MatrixConfig::smoke()
            .with_scenarios(vec![ScenarioKind::SyntheticGaussian])
            .with_regimes(vec![PrivacyRegime::NonPrivate, PrivacyRegime::P2bShuffle])
            .with_policies(vec![PolicyKind::LinUcb])
            .with_seed(7)
    }

    #[test]
    fn validates_configuration() {
        let mut bad = tiny();
        bad.repeats = 0;
        assert!(run_matrix(&bad).is_err());
        let mut bad = tiny();
        bad.num_codes = 1;
        assert!(run_matrix(&bad).is_err());
        let mut bad = tiny();
        bad.scenarios.clear();
        assert!(run_matrix(&bad).is_err());
        let mut bad = tiny();
        bad.encoder_corpus_size = 2;
        assert!(run_matrix(&bad).is_err());
        // An unused (invalid) LDP budget only matters when LocalDp runs.
        let mut no_ldp = tiny();
        no_ldp.ldp_epsilon = 0.0;
        no_ldp.num_users = 10;
        assert!(run_matrix(&no_ldp).is_ok());
        let mut with_ldp = MatrixConfig::smoke().with_seed(1);
        with_ldp.ldp_epsilon = 0.0;
        assert!(run_matrix(&with_ldp).is_err());
    }

    #[test]
    fn matrix_covers_the_cross_product_in_axis_order() {
        let config = tiny().with_repeats(2);
        assert_eq!(config.num_cells(), 4);
        let result = run_matrix(&config).unwrap();
        assert_eq!(result.cells.len(), 4);
        let expected_rounds = config.num_users as u64 * config.interactions_per_user;
        for cell in &result.cells {
            assert_eq!(cell.rounds, expected_rounds);
            assert!(cell.average_reward >= 0.0 && cell.average_reward <= 1.0);
            assert!(cell.final_cumulative_regret >= -1e-9);
            let last = cell.series.last().unwrap();
            assert_eq!(last.round, expected_rounds);
            assert!((last.cumulative_reward - cell.final_cumulative_reward).abs() < 1e-9);
        }
        // Axis order: regime-major within the scenario, repeats innermost.
        assert_eq!(result.cells[0].spec.regime, PrivacyRegime::NonPrivate);
        assert_eq!(result.cells[0].spec.repeat, 0);
        assert_eq!(result.cells[1].spec.repeat, 1);
        assert_eq!(result.cells[2].spec.regime, PrivacyRegime::P2bShuffle);
    }

    #[test]
    fn repeats_and_cells_get_distinct_seeds() {
        let config = tiny().with_repeats(3);
        let result = run_matrix(&config).unwrap();
        let seeds: std::collections::HashSet<u64> =
            result.cells.iter().map(|c| c.spec.seed).collect();
        assert_eq!(seeds.len(), result.cells.len());
    }

    #[test]
    fn same_config_is_bit_deterministic_at_any_worker_count() {
        let mut serial = tiny();
        serial.cell_workers = 1;
        let mut threaded = tiny();
        threaded.cell_workers = 4;
        let a = run_matrix(&serial).unwrap();
        let b = run_matrix(&threaded).unwrap();
        assert_eq!(a.cells, b.cells);
    }

    #[test]
    fn privacy_accounting_follows_the_regime() {
        let config = MatrixConfig::smoke()
            .with_scenarios(vec![ScenarioKind::SyntheticGaussian])
            .with_seed(11);
        let result = run_matrix(&config).unwrap();
        let non_private = result
            .cell(
                ScenarioKind::SyntheticGaussian,
                PrivacyRegime::NonPrivate,
                PolicyKind::LinUcb,
            )
            .unwrap();
        assert_eq!(non_private.epsilon, None);
        assert_eq!(non_private.delta, None);
        assert!(non_private.batch_guarantees.is_empty());
        assert_eq!(non_private.shared_reports, non_private.submitted_reports);

        let ldp = result
            .cell(
                ScenarioKind::SyntheticGaussian,
                PrivacyRegime::LocalDp,
                PolicyKind::LinUcb,
            )
            .unwrap();
        assert_eq!(ldp.epsilon, Some(config.ldp_epsilon));
        assert_eq!(ldp.delta, Some(0.0));

        let p2b = result
            .cell(
                ScenarioKind::SyntheticGaussian,
                PrivacyRegime::P2bShuffle,
                PolicyKind::LinUcb,
            )
            .unwrap();
        // p = 0.5 gives the paper's headline ε = ln 2 (Equation 3).
        assert!((p2b.epsilon.unwrap() - std::f64::consts::LN_2).abs() < 1e-12);
        assert!(p2b.delta.unwrap() >= 0.0);
        assert!(!p2b.batch_guarantees.is_empty());
        // Thresholding can only drop reports, never invent them.
        assert!(p2b.shared_reports <= p2b.submitted_reports);
        for batch in &p2b.batch_guarantees {
            if batch.released > 0 {
                assert!(batch.crowd_size >= config.shuffler_threshold as u64);
            }
        }
    }

    #[test]
    fn central_dp_cells_run_and_account_in_zcdp() {
        let config = MatrixConfig::smoke()
            .with_scenarios(vec![ScenarioKind::SyntheticGaussian])
            .with_regimes(vec![PrivacyRegime::NonPrivate, PrivacyRegime::CentralDp])
            .with_policies(vec![PolicyKind::LinUcb])
            .with_seed(13);
        let result = run_matrix(&config).unwrap();
        assert_eq!(result.cells.len(), config.num_cells());
        let central = result
            .cell(
                ScenarioKind::SyntheticGaussian,
                PrivacyRegime::CentralDp,
                PolicyKind::LinUcb,
            )
            .unwrap();
        // The curator ingests every taken reporting opportunity directly.
        assert_eq!(central.shared_reports, central.submitted_reports);
        assert!(central.shared_reports > 0);
        // ε is the stream's zCDP cost converted at the documented target δ.
        let eps = central.epsilon.unwrap();
        assert!(eps.is_finite() && eps > 0.0);
        assert_eq!(central.delta, Some(CENTRAL_TARGET_DELTA));
        assert!(central.batch_guarantees.is_empty());
        // The expected ρ is the closed-form binary-mechanism bound.
        let leaf_nodes = u64::BITS - (config.num_users as u64).leading_zeros();
        let rho = f64::from(leaf_nodes) * CENTRAL_LEAF_SENSITIVITY * CENTRAL_LEAF_SENSITIVITY
            / (2.0 * CENTRAL_SIGMA * CENTRAL_SIGMA);
        let expected = p2b_privacy::rho_to_epsilon(rho, CENTRAL_TARGET_DELTA).unwrap();
        assert!((eps - expected).abs() < 1e-12);
    }

    #[test]
    fn central_dp_is_bit_deterministic_at_any_worker_count() {
        let base = MatrixConfig::smoke()
            .with_scenarios(vec![ScenarioKind::SyntheticGaussian])
            .with_regimes(vec![PrivacyRegime::CentralDp])
            .with_policies(vec![PolicyKind::LinUcb])
            .with_seed(23);
        let mut serial = base.clone();
        serial.cell_workers = 1;
        let mut threaded = base;
        threaded.cell_workers = 4;
        let a = run_matrix(&serial).unwrap();
        let b = run_matrix(&threaded).unwrap();
        assert_eq!(a.cells, b.cells);
    }

    #[test]
    fn central_dp_requires_linucb_on_the_policy_axis() {
        let bad = MatrixConfig::smoke()
            .with_scenarios(vec![ScenarioKind::SyntheticGaussian])
            .with_regimes(vec![PrivacyRegime::CentralDp])
            .with_policies(vec![PolicyKind::Ucb1]);
        assert!(run_matrix(&bad).is_err());

        // With LinUcb present, unsupported combinations are skipped, not run.
        let mixed = MatrixConfig::smoke()
            .with_scenarios(vec![ScenarioKind::SyntheticGaussian])
            .with_regimes(vec![PrivacyRegime::NonPrivate, PrivacyRegime::CentralDp])
            .with_policies(vec![PolicyKind::LinUcb, PolicyKind::Ucb1])
            .with_seed(3);
        // NonPrivate × {LinUcb, Ucb1} + CentralDp × {LinUcb} = 3 cells.
        assert_eq!(mixed.num_cells(), 3);
        let result = run_matrix(&mixed).unwrap();
        assert_eq!(result.cells.len(), 3);
        assert!(result
            .cells
            .iter()
            .all(|c| MatrixConfig::cell_supported(c.spec.regime, c.spec.policy)));
    }

    #[test]
    fn secure_agg_cells_run_without_a_guarantee_and_track_the_ceiling() {
        let config = MatrixConfig::smoke()
            .with_scenarios(vec![ScenarioKind::SyntheticGaussian])
            .with_regimes(vec![PrivacyRegime::NonPrivate, PrivacyRegime::SecureAgg])
            .with_policies(vec![PolicyKind::LinUcb])
            .with_seed(17);
        let result = run_matrix(&config).unwrap();
        assert_eq!(result.cells.len(), config.num_cells());
        let secure = result
            .cell(
                ScenarioKind::SyntheticGaussian,
                PrivacyRegime::SecureAgg,
                PolicyKind::LinUcb,
            )
            .unwrap();
        // Every taken reporting opportunity is shared (no thresholding).
        assert_eq!(secure.shared_reports, secure.submitted_reports);
        assert!(secure.shared_reports > 0);
        // A trust split, not a DP mechanism: no (ε, δ) is reported.
        assert_eq!(secure.epsilon, None);
        assert_eq!(secure.delta, None);
        assert!(secure.batch_guarantees.is_empty());
        // No noise is added, so the regime stays within striking distance of
        // the non-private ceiling (it differs only by epoch-snapshot lag and
        // ~2⁻⁴⁸ quantization).
        let ceiling = result
            .cell(
                ScenarioKind::SyntheticGaussian,
                PrivacyRegime::NonPrivate,
                PolicyKind::LinUcb,
            )
            .unwrap();
        assert!(
            secure.final_cumulative_reward > 0.5 * ceiling.final_cumulative_reward,
            "secure agg ({:.2}) should track the non-private ceiling ({:.2})",
            secure.final_cumulative_reward,
            ceiling.final_cumulative_reward
        );
    }

    #[test]
    fn secure_agg_is_bit_deterministic_at_any_worker_count() {
        let base = MatrixConfig::smoke()
            .with_scenarios(vec![ScenarioKind::SyntheticGaussian])
            .with_regimes(vec![PrivacyRegime::SecureAgg])
            .with_policies(vec![PolicyKind::LinUcb])
            .with_seed(29);
        let mut serial = base.clone();
        serial.cell_workers = 1;
        let mut threaded = base;
        threaded.cell_workers = 4;
        let a = run_matrix(&serial).unwrap();
        let b = run_matrix(&threaded).unwrap();
        assert_eq!(a.cells, b.cells);
    }

    #[test]
    fn secure_agg_requires_linucb_on_the_policy_axis() {
        let bad = MatrixConfig::smoke()
            .with_scenarios(vec![ScenarioKind::SyntheticGaussian])
            .with_regimes(vec![PrivacyRegime::SecureAgg])
            .with_policies(vec![PolicyKind::Ucb1]);
        assert!(run_matrix(&bad).is_err());

        // With LinUcb present, unsupported combinations are skipped, not run.
        let mixed = MatrixConfig::smoke()
            .with_scenarios(vec![ScenarioKind::SyntheticGaussian])
            .with_regimes(vec![PrivacyRegime::NonPrivate, PrivacyRegime::SecureAgg])
            .with_policies(vec![PolicyKind::LinUcb, PolicyKind::Ucb1])
            .with_seed(31);
        // NonPrivate × {LinUcb, Ucb1} + SecureAgg × {LinUcb} = 3 cells.
        assert_eq!(mixed.num_cells(), 3);
        let result = run_matrix(&mixed).unwrap();
        assert_eq!(result.cells.len(), 3);
        assert!(result
            .cells
            .iter()
            .all(|c| MatrixConfig::cell_supported(c.spec.regime, c.spec.policy)));
    }

    #[test]
    fn p2b_retains_more_utility_than_randomized_response() {
        // The paper's core empirical claim (Figures 4-7), at smoke scale on
        // the synthetic benchmark: the non-private regime is the ceiling,
        // P2B tracks it, and per-report randomized response trails.
        let config = MatrixConfig::smoke()
            .with_scenarios(vec![ScenarioKind::SyntheticGaussian])
            .with_seed(5);
        let result = run_matrix(&config).unwrap();
        let reward = |regime| {
            result
                .cell(ScenarioKind::SyntheticGaussian, regime, PolicyKind::LinUcb)
                .unwrap()
                .final_cumulative_reward
        };
        let non_private = reward(PrivacyRegime::NonPrivate);
        let ldp = reward(PrivacyRegime::LocalDp);
        let p2b = reward(PrivacyRegime::P2bShuffle);
        assert!(
            p2b >= ldp,
            "P2B ({p2b:.2}) must retain at least randomized response's utility ({ldp:.2})"
        );
        assert!(
            non_private >= ldp,
            "non-private ({non_private:.2}) must be the ceiling over LDP ({ldp:.2})"
        );
    }
}
