//! JSON and CSV emitters for matrix results.
//!
//! Both emitters are deterministic: two runs of the same configuration
//! produce byte-identical files, which the golden-file tests and the CI
//! smoke step rely on.

use crate::{ExperimentError, MatrixResult};
use std::fmt::Write as _;
use std::path::Path;

/// Renders a matrix result as pretty-printed JSON.
///
/// # Errors
///
/// Returns [`ExperimentError::InvalidConfig`] when serialization fails.
pub fn matrix_to_json(result: &MatrixResult) -> Result<String, ExperimentError> {
    serde_json::to_string_pretty(result).map_err(|e| ExperimentError::InvalidConfig {
        parameter: "result",
        message: format!("serialization failed: {e}"),
    })
}

/// Renders a matrix result as CSV: one row per recorded series point, so the
/// per-round regret / CTR curves can be re-plotted directly. The achieved
/// privacy guarantee of the cell is repeated on every row (empty for the
/// non-private regime).
#[must_use]
pub fn matrix_to_csv(result: &MatrixResult) -> String {
    let mut out = String::new();
    out.push_str(
        "scenario,regime,policy,repeat,seed,round,cumulative_reward,cumulative_regret,\
         average_reward,epsilon,delta\n",
    );
    for cell in &result.cells {
        let epsilon = cell.epsilon.map_or_else(String::new, |e| e.to_string());
        let delta = cell.delta.map_or_else(String::new, |d| d.to_string());
        for p in &cell.series {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{}",
                cell.spec.scenario.key(),
                cell.spec.regime.key(),
                cell.spec.policy.key(),
                cell.spec.repeat,
                cell.spec.seed,
                p.round,
                p.cumulative_reward,
                p.cumulative_regret,
                p.average_reward,
                epsilon,
                delta,
            );
        }
    }
    out
}

/// Writes the JSON form of a matrix result, creating parent directories.
///
/// # Errors
///
/// Propagates serialization and filesystem errors.
pub fn write_matrix_json(path: &Path, result: &MatrixResult) -> Result<(), ExperimentError> {
    write_file(path, &matrix_to_json(result)?)
}

/// Writes the CSV form of a matrix result, creating parent directories.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_matrix_csv(path: &Path, result: &MatrixResult) -> Result<(), ExperimentError> {
    write_file(path, &matrix_to_csv(result))
}

fn write_file(path: &Path, contents: &str) -> Result<(), ExperimentError> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, contents)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_matrix, MatrixConfig, PolicyKind, PrivacyRegime, ScenarioKind};

    fn tiny_result() -> MatrixResult {
        let config = MatrixConfig::smoke()
            .with_scenarios(vec![ScenarioKind::SyntheticGaussian])
            .with_regimes(vec![PrivacyRegime::NonPrivate, PrivacyRegime::P2bShuffle])
            .with_policies(vec![PolicyKind::Ucb1])
            .with_seed(3);
        let mut config = config;
        config.num_users = 30;
        config.record_every = 50;
        run_matrix(&config).unwrap()
    }

    #[test]
    fn csv_has_a_row_per_series_point_plus_header() {
        let result = tiny_result();
        let csv = matrix_to_csv(&result);
        let expected_rows: usize = result.cells.iter().map(|c| c.series.len()).sum();
        assert_eq!(csv.lines().count(), expected_rows + 1);
        assert!(csv.starts_with("scenario,regime,policy"));
        assert!(csv.contains("p2b_shuffle"));
        // Non-private rows end with two empty guarantee columns.
        let non_private_row = csv
            .lines()
            .find(|l| l.contains("non_private"))
            .expect("non-private rows present");
        assert!(non_private_row.ends_with(",,"));
    }

    #[test]
    fn json_round_trips_through_serde() {
        let result = tiny_result();
        let json = matrix_to_json(&result).unwrap();
        let parsed: MatrixResult = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, result);
    }

    #[test]
    fn emitters_are_deterministic() {
        let a = tiny_result();
        let b = tiny_result();
        assert_eq!(matrix_to_json(&a).unwrap(), matrix_to_json(&b).unwrap());
        assert_eq!(matrix_to_csv(&a), matrix_to_csv(&b));
    }

    #[test]
    fn files_are_written_with_parents() {
        let result = tiny_result();
        let dir = std::env::temp_dir().join("p2b_experiments_emit_test");
        let json_path = dir.join("nested").join("matrix.json");
        let csv_path = dir.join("nested").join("matrix.csv");
        write_matrix_json(&json_path, &result).unwrap();
        write_matrix_csv(&csv_path, &result).unwrap();
        assert_eq!(
            std::fs::read_to_string(&json_path).unwrap(),
            matrix_to_json(&result).unwrap()
        );
        assert_eq!(
            std::fs::read_to_string(&csv_path).unwrap(),
            matrix_to_csv(&result)
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
