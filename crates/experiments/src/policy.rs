//! The policy axis of the experiment matrix: which bandit algorithm runs on
//! every device and on the central server.

use crate::ExperimentError;
use p2b_bandit::{
    Action, ContextualPolicy, EpsilonGreedy, EpsilonGreedyConfig, LinUcb, LinUcbConfig,
    LinearThompsonSampling, ThompsonConfig, Ucb1,
};
use p2b_linalg::Vector;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which bandit policy a matrix cell runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// ε-greedy with per-arm linear value estimates.
    EpsilonGreedy,
    /// Context-free UCB1 (Auer et al. 2002).
    Ucb1,
    /// Linear Thompson sampling (posterior-sampling exploration).
    Thompson,
    /// Disjoint-arm LinUCB — the policy the paper's experiments use.
    LinUcb,
}

impl PolicyKind {
    /// Every policy, LinUCB (the paper's choice) last so tables end on it.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::EpsilonGreedy,
        PolicyKind::Ucb1,
        PolicyKind::Thompson,
        PolicyKind::LinUcb,
    ];

    /// Stable identifier used in result files and CSV rows.
    #[must_use]
    pub fn key(&self) -> &'static str {
        match self {
            PolicyKind::EpsilonGreedy => "epsilon_greedy",
            PolicyKind::Ucb1 => "ucb1",
            PolicyKind::Thompson => "thompson",
            PolicyKind::LinUcb => "linucb",
        }
    }

    /// Instantiates a cold-start policy of this kind for the given workload
    /// shape.
    ///
    /// # Errors
    ///
    /// Propagates policy-construction errors for degenerate shapes.
    pub fn build(
        &self,
        context_dimension: usize,
        num_actions: usize,
        alpha: f64,
    ) -> Result<AnyPolicy, ExperimentError> {
        Ok(match self {
            PolicyKind::EpsilonGreedy => AnyPolicy::EpsilonGreedy(EpsilonGreedy::new(
                EpsilonGreedyConfig::new(context_dimension, num_actions),
            )?),
            PolicyKind::Ucb1 => AnyPolicy::Ucb1(Ucb1::new(context_dimension, num_actions)?),
            PolicyKind::Thompson => AnyPolicy::Thompson(LinearThompsonSampling::new(
                ThompsonConfig::new(context_dimension, num_actions),
            )?),
            PolicyKind::LinUcb => AnyPolicy::LinUcb(LinUcb::new(
                LinUcbConfig::new(context_dimension, num_actions).with_alpha(alpha),
            )?),
        })
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// A concrete policy instance of any kind.
///
/// The cell runner warm-starts every simulated device by *cloning* the
/// central policy — a policy-agnostic warm start, where
/// [`LinUcb::merge`] would tie the harness to LinUCB — so the enum keeps the
/// concrete types (trait objects cannot be cloned).
#[derive(Debug, Clone)]
pub enum AnyPolicy {
    /// See [`PolicyKind::EpsilonGreedy`].
    EpsilonGreedy(EpsilonGreedy),
    /// See [`PolicyKind::Ucb1`].
    Ucb1(Ucb1),
    /// See [`PolicyKind::Thompson`].
    Thompson(LinearThompsonSampling),
    /// See [`PolicyKind::LinUcb`].
    LinUcb(LinUcb),
}

impl AnyPolicy {
    fn inner(&mut self) -> &mut dyn ContextualPolicy {
        match self {
            AnyPolicy::EpsilonGreedy(p) => p,
            AnyPolicy::Ucb1(p) => p,
            AnyPolicy::Thompson(p) => p,
            AnyPolicy::LinUcb(p) => p,
        }
    }

    /// Proposes an action for the observed context.
    ///
    /// # Errors
    ///
    /// Propagates the underlying policy's validation errors.
    pub fn select_action(
        &mut self,
        context: &Vector,
        rng: &mut dyn rand::RngCore,
    ) -> Result<Action, ExperimentError> {
        Ok(self.inner().select_action(context, rng)?)
    }

    /// Feeds back the reward observed for `action` under `context`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying policy's validation errors.
    pub fn update(
        &mut self,
        context: &Vector,
        action: Action,
        reward: f64,
    ) -> Result<(), ExperimentError> {
        Ok(self.inner().update(context, action, reward)?)
    }

    /// Total number of updates the policy has absorbed.
    #[must_use]
    pub fn observations(&mut self) -> u64 {
        self.inner().observations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn keys_are_distinct() {
        let keys: std::collections::HashSet<_> =
            PolicyKind::ALL.iter().map(PolicyKind::key).collect();
        assert_eq!(keys.len(), PolicyKind::ALL.len());
    }

    #[test]
    fn every_policy_kind_runs_a_pull_update_loop() {
        let mut rng = StdRng::seed_from_u64(1);
        for kind in PolicyKind::ALL {
            let mut policy = kind.build(4, 3, 1.0).unwrap();
            let ctx = Vector::from(vec![0.4, 0.3, 0.2, 0.1]);
            for _ in 0..5 {
                let action = policy.select_action(&ctx, &mut rng).unwrap();
                assert!(action.index() < 3, "{kind}");
                policy.update(&ctx, action, 0.5).unwrap();
            }
            assert_eq!(policy.observations(), 5, "{kind}");
        }
    }

    #[test]
    fn cloning_carries_the_learned_state() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut central = PolicyKind::LinUcb.build(2, 2, 1.0).unwrap();
        let ctx = Vector::from(vec![1.0, 0.0]);
        for _ in 0..30 {
            central.update(&ctx, Action::new(1), 1.0).unwrap();
            central.update(&ctx, Action::new(0), 0.0).unwrap();
        }
        let mut warm = central.clone();
        let mut votes = 0;
        for _ in 0..10 {
            if warm.select_action(&ctx, &mut rng).unwrap().index() == 1 {
                votes += 1;
            }
        }
        assert!(votes >= 8, "warm clone should exploit learned state");
    }

    #[test]
    fn degenerate_shapes_are_rejected() {
        assert!(PolicyKind::LinUcb.build(0, 3, 1.0).is_err());
        assert!(PolicyKind::Ucb1.build(3, 0, 1.0).is_err());
    }
}
