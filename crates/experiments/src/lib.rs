//! Config-driven scenario-matrix experiment harness for the P2B
//! reproduction.
//!
//! The paper's core empirical claim (Malekzadeh et al., MLSys 2020,
//! Figures 4–7) is that P2B's encode-then-shuffle pipeline retains most of
//! the non-private baseline's utility, while purely local randomization
//! (RAPPOR-style randomized response, the regime of LDP bandit work such as
//! Han et al.) pays a steep per-report utility price. This crate makes that
//! claim a single reproducible artifact: a **scenario registry**
//! ([`ScenarioKind`]) crossed with a **privacy-regime axis**
//! ([`PrivacyRegime`]) and a **policy axis** ([`PolicyKind`]), executed by
//! [`run_matrix`] with seeded determinism and per-cell repeats, streaming
//! per-round regret / CTR plus the achieved (ε, δ) — per batch, from the
//! [`p2b_privacy::AmplificationLedger`] — into JSON and CSV emitters
//! ([`write_matrix_json`], [`write_matrix_csv`]).
//!
//! The `figures` binary in `p2b-bench` replays the paper's Figure 4–7 setups
//! through this harness end-to-end; see `docs/REPRODUCING.md` for the exact
//! commands and the expected output schema.
//!
//! # Example
//!
//! ```
//! use p2b_experiments::{
//!     run_matrix, MatrixConfig, PolicyKind, PrivacyRegime, ScenarioKind,
//! };
//!
//! # fn main() -> Result<(), p2b_experiments::ExperimentError> {
//! let mut config = MatrixConfig::smoke()
//!     .with_scenarios(vec![ScenarioKind::SyntheticGaussian])
//!     .with_regimes(vec![PrivacyRegime::NonPrivate, PrivacyRegime::P2bShuffle])
//!     .with_policies(vec![PolicyKind::LinUcb])
//!     .with_seed(1);
//! config.num_users = 40;
//! let result = run_matrix(&config)?;
//! assert_eq!(result.cells.len(), 2);
//! let p2b = result
//!     .cell(
//!         ScenarioKind::SyntheticGaussian,
//!         PrivacyRegime::P2bShuffle,
//!         PolicyKind::LinUcb,
//!     )
//!     .expect("cell ran");
//! assert!(p2b.epsilon.is_some(), "P2B cells report their achieved ε");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod emit;
mod error;
mod matrix;
mod policy;
mod regime;
mod scenario;
mod streaming;

pub use emit::{matrix_to_csv, matrix_to_json, write_matrix_csv, write_matrix_json};
pub use error::ExperimentError;
pub use matrix::{
    run_cell, run_matrix, BatchGuarantee, CellResult, CellSpec, MatrixConfig, MatrixResult,
    RoundPoint, CENTRAL_LEAF_SENSITIVITY, CENTRAL_SIGMA, CENTRAL_TARGET_DELTA,
};
pub use policy::{AnyPolicy, PolicyKind};
pub use regime::PrivacyRegime;
pub(crate) use scenario::ScenarioData;
pub use scenario::{
    ScenarioKind, ScenarioShape, CHURN_COHORTS, CHURN_ROTATION_PERIOD, DELAYED_MAX_REWARD_DELAY,
    DRIFT_PERIOD_ROUNDS,
};
pub use streaming::run_streaming_shuffle;
