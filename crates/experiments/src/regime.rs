//! The privacy-regime axis of the experiment matrix: what protects a report
//! on its way from the device to the central model.
//!
//! This axis is the heart of the paper's empirical claim: P2B's
//! encode-then-shuffle trust model retains most of the non-private utility,
//! while an LDP-style randomized-response baseline (the regime related work
//! such as Han et al., *Generalized Linear Bandits with Local Differential
//! Privacy*, operates in) pays a steep per-report utility price.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How a shared report is privatized before it reaches the central model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrivacyRegime {
    /// Raw `(x, a, r)` tuples are shared directly — the non-private utility
    /// ceiling of Figures 4–7.
    NonPrivate,
    /// The whole report is randomized on-device with randomized response
    /// (ε-LDP by composition across code, action and reward — RAPPOR-style)
    /// before being shared; the central model trains on the randomized
    /// code's representative context with the randomized action and reward.
    LocalDp,
    /// The P2B pipeline: exact context codes travel through the sharded
    /// [`p2b_shuffler::ShufflerEngine`] (anonymize, shuffle, crowd-blending
    /// threshold) with per-batch (ε, δ) accounting from the
    /// [`p2b_privacy::AmplificationLedger`].
    P2bShuffle,
    /// The classic central-DP baseline the paper positions P2B against: raw
    /// `(x, a, r)` tuples go to a trusted curator, which releases the LinUCB
    /// sufficient statistics through a [`p2b_privacy::TreeAggregator`]
    /// (Gaussian noise on O(log T) dyadic partial sums) and accounts the
    /// releases in ρ-zCDP via the [`p2b_privacy::ZcdpAccountant`].
    CentralDp,
    /// Secure aggregation without a trusted curator: each report's LinUCB
    /// sufficient-statistic leaf is fixed-point encoded and additively
    /// secret-shared ([`p2b_privacy::SecretSharer`]) across independent
    /// aggregator shards, and the model is rebuilt from the *recombined*
    /// sums only. The guarantee is architectural (no single aggregator sees
    /// a contribution in the clear), not differential privacy — utility is
    /// the non-private ceiling up to fixed-point quantization.
    SecureAgg,
}

impl PrivacyRegime {
    /// Every regime, ordered from no privacy to the paper's mechanism, with
    /// the comparison baselines (central DP, then secure aggregation) last.
    pub const ALL: [PrivacyRegime; 5] = [
        PrivacyRegime::NonPrivate,
        PrivacyRegime::LocalDp,
        PrivacyRegime::P2bShuffle,
        PrivacyRegime::CentralDp,
        PrivacyRegime::SecureAgg,
    ];

    /// Stable identifier used in result files and CSV rows.
    #[must_use]
    pub fn key(&self) -> &'static str {
        match self {
            PrivacyRegime::NonPrivate => "non_private",
            PrivacyRegime::LocalDp => "ldp_randomized_response",
            PrivacyRegime::P2bShuffle => "p2b_shuffle",
            PrivacyRegime::CentralDp => "central_dp_tree",
            PrivacyRegime::SecureAgg => "secure_agg",
        }
    }

    /// Whether the regime offers any differential-privacy guarantee.
    /// Secure aggregation does not: its protection is a trust split (no
    /// single aggregator sees plaintext), so it reports no (ε, δ).
    #[must_use]
    pub fn is_private(&self) -> bool {
        !matches!(self, PrivacyRegime::NonPrivate | PrivacyRegime::SecureAgg)
    }

    /// Whether the regime needs a fitted context encoder (the on-device
    /// private regimes share codes, not raw contexts; the central-DP curator
    /// and the secure-aggregation shards consume statistics built from raw
    /// contexts on the submitting side).
    #[must_use]
    pub fn uses_encoder(&self) -> bool {
        !matches!(
            self,
            PrivacyRegime::NonPrivate | PrivacyRegime::CentralDp | PrivacyRegime::SecureAgg
        )
    }
}

impl fmt::Display for PrivacyRegime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self {
            PrivacyRegime::NonPrivate => "non-private",
            PrivacyRegime::LocalDp => "LDP randomized response",
            PrivacyRegime::P2bShuffle => "P2B shuffle",
            PrivacyRegime::CentralDp => "central DP (tree aggregation)",
            PrivacyRegime::SecureAgg => "secure aggregation (additive shares)",
        };
        f.write_str(label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_distinct() {
        let keys: std::collections::HashSet<_> =
            PrivacyRegime::ALL.iter().map(PrivacyRegime::key).collect();
        assert_eq!(keys.len(), PrivacyRegime::ALL.len());
    }

    #[test]
    fn classification() {
        assert!(!PrivacyRegime::NonPrivate.is_private());
        assert!(PrivacyRegime::LocalDp.is_private());
        assert!(PrivacyRegime::P2bShuffle.is_private());
        assert!(PrivacyRegime::CentralDp.is_private());
        assert!(
            !PrivacyRegime::SecureAgg.is_private(),
            "secure aggregation is a trust split, not a DP guarantee"
        );
        assert!(!PrivacyRegime::NonPrivate.uses_encoder());
        assert!(PrivacyRegime::LocalDp.uses_encoder());
        assert!(PrivacyRegime::P2bShuffle.uses_encoder());
        assert!(
            !PrivacyRegime::CentralDp.uses_encoder(),
            "the curator receives raw contexts and privatizes server-side"
        );
        assert!(!PrivacyRegime::SecureAgg.uses_encoder());
        assert!(PrivacyRegime::LocalDp.to_string().contains("LDP"));
        assert!(PrivacyRegime::CentralDp.to_string().contains("central"));
        assert!(PrivacyRegime::SecureAgg.to_string().contains("secure"));
    }
}
