//! The scenario axis of the experiment matrix: which workload generates the
//! contexts and rewards of a cell.
//!
//! Scenarios reuse the workload substrate of [`p2b_datasets`]: the synthetic
//! preference benchmark of Section 5.1 (in Gaussian-noise and Bernoulli-click
//! reward flavors), the multi-label classification workload of Section 5.2,
//! and the Criteo-like advertising workload of Section 5.3.

use crate::ExperimentError;
use p2b_datasets::{
    CohortChurnConfig, CohortChurnEnvironment, ContextualEnvironment, CriteoConfig,
    CriteoLikeGenerator, DriftConfig, DriftingPreferenceEnvironment, MultiLabelConfig,
    MultiLabelDataset, SyntheticConfig, SyntheticPreferenceEnvironment,
};
use p2b_linalg::Vector;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Rounds between drift steps of [`ScenarioKind::SyntheticDrift`].
///
/// The non-stationary scenario knobs are fixed, documented constants rather
/// than [`crate::MatrixConfig`] fields: the matrix configuration's
/// serialized schema is frozen by the golden result files, while the
/// underlying generators ([`p2b_datasets::DriftConfig`],
/// [`p2b_datasets::CohortChurnConfig`], [`p2b_core::RewardJoinBuffer`])
/// expose the full knobs for direct use.
pub const DRIFT_PERIOD_ROUNDS: u64 = 150;
/// Rounds between cohort replacements of [`ScenarioKind::SyntheticChurn`].
pub const CHURN_ROTATION_PERIOD: u64 = 100;
/// Concurrently active cohorts of [`ScenarioKind::SyntheticChurn`].
pub const CHURN_COHORTS: usize = 4;
/// Join window (in interactions) of [`ScenarioKind::SyntheticDelayed`]:
/// rewards arrive up to this many rounds late; scheduled delays are drawn
/// from one round more, so the overflow share expires as lost feedback.
pub const DELAYED_MAX_REWARD_DELAY: u64 = 2;

/// Which workload a matrix cell runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// Synthetic preference benchmark with Gaussian reward noise
    /// (Section 5.1, Figures 4 and 5).
    SyntheticGaussian,
    /// Synthetic preference benchmark with Bernoulli (click-like) rewards.
    SyntheticBernoulli,
    /// Clustered multi-label classification with bandit feedback
    /// (Section 5.2, Figure 6).
    MultiLabel,
    /// Criteo-like online advertising from logged impressions
    /// (Section 5.3, Figure 7).
    CriteoLike,
    /// Preference drift: the synthetic benchmark's reward means rotate by
    /// one action every [`DRIFT_PERIOD_ROUNDS`] rounds
    /// ([`p2b_datasets::DriftingPreferenceEnvironment`]).
    SyntheticDrift,
    /// User churn: contexts follow a rotating cohort population
    /// ([`p2b_datasets::CohortChurnEnvironment`], rotation every
    /// [`CHURN_ROTATION_PERIOD`] rounds).
    SyntheticChurn,
    /// Delayed rewards: the stationary synthetic benchmark, but local
    /// updates and shared reports only see rewards that joined their
    /// decision within [`DELAYED_MAX_REWARD_DELAY`] rounds
    /// ([`p2b_core::RewardJoinBuffer`]); later rewards are lost.
    SyntheticDelayed,
}

impl ScenarioKind {
    /// Every scenario: the paper's workloads in presentation order,
    /// followed by the non-stationary axis.
    pub const ALL: [ScenarioKind; 7] = [
        ScenarioKind::SyntheticGaussian,
        ScenarioKind::SyntheticBernoulli,
        ScenarioKind::MultiLabel,
        ScenarioKind::CriteoLike,
        ScenarioKind::SyntheticDrift,
        ScenarioKind::SyntheticChurn,
        ScenarioKind::SyntheticDelayed,
    ];

    /// Stable identifier used in result files and CSV rows.
    #[must_use]
    pub fn key(&self) -> &'static str {
        match self {
            ScenarioKind::SyntheticGaussian => "synthetic_gaussian",
            ScenarioKind::SyntheticBernoulli => "synthetic_bernoulli",
            ScenarioKind::MultiLabel => "multilabel",
            ScenarioKind::CriteoLike => "criteo_like",
            ScenarioKind::SyntheticDrift => "synthetic_drift",
            ScenarioKind::SyntheticChurn => "synthetic_churn",
            ScenarioKind::SyntheticDelayed => "synthetic_delayed",
        }
    }

    /// The paper figure this scenario's utility-vs-privacy comparison
    /// corresponds to.
    #[must_use]
    pub fn paper_figure(&self) -> &'static str {
        match self {
            ScenarioKind::SyntheticGaussian => "Fig. 4-5",
            ScenarioKind::SyntheticBernoulli => "Fig. 4-5 (Bernoulli)",
            ScenarioKind::MultiLabel => "Fig. 6",
            ScenarioKind::CriteoLike => "Fig. 7",
            ScenarioKind::SyntheticDrift => "beyond paper: preference drift",
            ScenarioKind::SyntheticChurn => "beyond paper: user churn",
            ScenarioKind::SyntheticDelayed => "beyond paper: delayed rewards",
        }
    }

    /// The delayed-reward join window of this scenario, in rounds; zero
    /// means every reward is observed in the round it was earned.
    #[must_use]
    pub fn max_reward_delay(&self) -> u64 {
        match self {
            ScenarioKind::SyntheticDelayed => DELAYED_MAX_REWARD_DELAY,
            _ => 0,
        }
    }
}

impl fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// Shape parameters shared by every scenario of one matrix run.
///
/// Synthetic scenarios honor `context_dimension` / `num_actions` exactly; the
/// logged scenarios (multi-label, Criteo-like) use their own paper-faithful
/// shapes scaled down by `logged_instances`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioShape {
    /// Context dimension `d` of the synthetic scenarios.
    pub context_dimension: usize,
    /// Number of actions `A` of the synthetic scenarios.
    pub num_actions: usize,
    /// Reward scale `β` of the synthetic scenarios.
    pub beta: f64,
    /// Gaussian reward-noise variance `σ²` of the synthetic-Gaussian scenario.
    pub noise_variance: f64,
    /// Number of logged instances generated for the multi-label and
    /// Criteo-like scenarios (rounds cycle through them).
    pub logged_instances: usize,
}

impl Default for ScenarioShape {
    fn default() -> Self {
        Self {
            context_dimension: 6,
            num_actions: 8,
            // A stronger reward scale than the paper's β = 0.1 keeps the
            // regime ordering visible at small (CI-friendly) scales.
            beta: 0.8,
            noise_variance: 0.0025,
            logged_instances: 512,
        }
    }
}

/// One round's worth of data handed to the cell runner: the observed context
/// plus a reward oracle over every action.
pub(crate) struct Round {
    /// The observed context.
    pub context: Vector,
    /// Index of the backing logged instance (`None` for synthetic rounds).
    logged_index: Option<usize>,
}

/// A materialized scenario: the source of contexts and rewards for one cell.
///
/// Synthetic scenarios sample fresh contexts every round; logged scenarios
/// cycle deterministically through their generated instances.
pub(crate) enum ScenarioData {
    Synthetic(SyntheticPreferenceEnvironment),
    /// Preference drift: round-aware, advanced at every `next_round`.
    Drifting {
        env: DriftingPreferenceEnvironment,
        started: bool,
    },
    /// Cohort churn: round-aware, advanced at every `next_round`.
    Churning {
        env: CohortChurnEnvironment,
        started: bool,
    },
    Logged {
        contexts: Vec<Vector>,
        /// `rewards[i][a]` is the reward of action `a` on instance `i`.
        rewards: Vec<Vec<f64>>,
        cursor: usize,
    },
}

impl ScenarioData {
    /// Builds the workload behind `kind`, seeding all generation from `rng`.
    pub fn build(
        kind: ScenarioKind,
        shape: &ScenarioShape,
        rng: &mut StdRng,
    ) -> Result<Self, ExperimentError> {
        match kind {
            ScenarioKind::SyntheticGaussian => {
                let config = SyntheticConfig::new(shape.context_dimension, shape.num_actions)
                    .with_beta(shape.beta)
                    .with_noise_variance(shape.noise_variance);
                Ok(ScenarioData::Synthetic(
                    SyntheticPreferenceEnvironment::new(config, rng)?,
                ))
            }
            ScenarioKind::SyntheticBernoulli => {
                let config = SyntheticConfig::new(shape.context_dimension, shape.num_actions)
                    .with_beta(shape.beta)
                    .with_bernoulli_rewards();
                Ok(ScenarioData::Synthetic(
                    SyntheticPreferenceEnvironment::new(config, rng)?,
                ))
            }
            ScenarioKind::SyntheticDrift => {
                let config = SyntheticConfig::new(shape.context_dimension, shape.num_actions)
                    .with_beta(shape.beta)
                    .with_noise_variance(shape.noise_variance);
                Ok(ScenarioData::Drifting {
                    env: DriftingPreferenceEnvironment::new(
                        config,
                        DriftConfig::new(crate::DRIFT_PERIOD_ROUNDS),
                        rng,
                    )?,
                    started: false,
                })
            }
            ScenarioKind::SyntheticChurn => {
                let config = SyntheticConfig::new(shape.context_dimension, shape.num_actions)
                    .with_beta(shape.beta)
                    .with_noise_variance(shape.noise_variance);
                Ok(ScenarioData::Churning {
                    env: CohortChurnEnvironment::new(
                        CohortChurnConfig::new(config)
                            .with_num_cohorts(crate::CHURN_COHORTS)
                            .with_rotation_period(crate::CHURN_ROTATION_PERIOD),
                        rng,
                    )?,
                    started: false,
                })
            }
            ScenarioKind::SyntheticDelayed => {
                // The environment is the stationary benchmark; the delay
                // lives in the cell runner's reward-join buffer.
                let config = SyntheticConfig::new(shape.context_dimension, shape.num_actions)
                    .with_beta(shape.beta)
                    .with_noise_variance(shape.noise_variance);
                Ok(ScenarioData::Synthetic(
                    SyntheticPreferenceEnvironment::new(config, rng)?,
                ))
            }
            ScenarioKind::MultiLabel => {
                let config = MultiLabelConfig::new(shape.logged_instances, 10, 8).with_clusters(12);
                let dataset = MultiLabelDataset::generate(config, rng)?;
                let num_labels = dataset.num_labels();
                let (contexts, rewards) = dataset
                    .instances()
                    .iter()
                    .map(|inst| {
                        let per_action: Vec<f64> =
                            (0..num_labels).map(|a| inst.reward(a)).collect();
                        (inst.context().clone(), per_action)
                    })
                    .unzip();
                Ok(ScenarioData::Logged {
                    contexts,
                    rewards,
                    cursor: 0,
                })
            }
            ScenarioKind::CriteoLike => {
                let config = CriteoConfig::new()
                    .with_context_dimension(10)
                    .with_product_codes(8);
                let generator = CriteoLikeGenerator::new(config, rng)?;
                // The generator drops impressions outside the top-A product
                // codes, so oversample to land near the requested count.
                let impressions = generator.generate(shape.logged_instances * 2, rng)?;
                let num_actions = config.num_product_codes;
                let (contexts, rewards) = impressions
                    .iter()
                    .take(shape.logged_instances.max(1))
                    .map(|imp| {
                        let per_action: Vec<f64> =
                            (0..num_actions).map(|a| imp.reward(a)).collect();
                        (imp.context().clone(), per_action)
                    })
                    .unzip();
                Ok(ScenarioData::Logged {
                    contexts,
                    rewards,
                    cursor: 0,
                })
            }
        }
    }

    /// Dimension of the contexts this scenario produces.
    pub fn context_dimension(&self) -> usize {
        match self {
            ScenarioData::Synthetic(env) => env.context_dimension(),
            ScenarioData::Drifting { env, .. } => env.context_dimension(),
            ScenarioData::Churning { env, .. } => env.context_dimension(),
            ScenarioData::Logged { contexts, .. } => {
                contexts.first().map_or(0, p2b_linalg::Vector::len)
            }
        }
    }

    /// Number of actions an agent selects between.
    pub fn num_actions(&self) -> usize {
        match self {
            ScenarioData::Synthetic(env) => env.num_actions(),
            ScenarioData::Drifting { env, .. } => env.num_actions(),
            ScenarioData::Churning { env, .. } => env.num_actions(),
            ScenarioData::Logged { rewards, .. } => rewards.first().map_or(0, Vec::len),
        }
    }

    /// Produces the next round's context. Round-aware (drifting/churning)
    /// scenarios advance their clock here, so every reward query between
    /// two `next_round` calls sees one consistent environment state.
    pub fn next_round(&mut self, rng: &mut StdRng) -> Round {
        match self {
            ScenarioData::Synthetic(env) => Round {
                context: env.sample_context(rng),
                logged_index: None,
            },
            ScenarioData::Drifting { env, started } => {
                if *started {
                    env.advance_round();
                }
                *started = true;
                Round {
                    context: env.sample_context(rng),
                    logged_index: None,
                }
            }
            ScenarioData::Churning { env, started } => {
                if *started {
                    env.advance_round(rng);
                }
                *started = true;
                Round {
                    context: env.sample_context(rng),
                    logged_index: None,
                }
            }
            ScenarioData::Logged {
                contexts, cursor, ..
            } => {
                let index = *cursor;
                *cursor = (*cursor + 1) % contexts.len();
                Round {
                    context: contexts[index].clone(),
                    logged_index: Some(index),
                }
            }
        }
    }

    /// Samples the realized reward of proposing `action` this round.
    pub fn sample_reward(
        &mut self,
        round: &Round,
        action: usize,
        rng: &mut StdRng,
    ) -> Result<f64, ExperimentError> {
        match (self, round.logged_index) {
            (ScenarioData::Synthetic(env), _) => {
                Ok(env.sample_reward(&round.context, action, rng)?)
            }
            (ScenarioData::Drifting { env, .. }, _) => {
                Ok(env.sample_reward(&round.context, action, rng)?)
            }
            (ScenarioData::Churning { env, .. }, _) => {
                Ok(env.sample_reward(&round.context, action, rng)?)
            }
            (ScenarioData::Logged { rewards, .. }, Some(index)) => Ok(rewards[index][action]),
            (ScenarioData::Logged { .. }, None) => Err(ExperimentError::InvalidConfig {
                parameter: "round",
                message: "logged scenario received a synthetic round".to_owned(),
            }),
        }
    }

    /// Expected reward of `action` this round (used for regret accounting).
    pub fn expected_reward(&self, round: &Round, action: usize) -> Result<f64, ExperimentError> {
        match (self, round.logged_index) {
            (ScenarioData::Synthetic(env), _) => Ok(env.expected_reward(&round.context, action)?),
            (ScenarioData::Drifting { env, .. }, _) => {
                Ok(env.expected_reward(&round.context, action)?)
            }
            (ScenarioData::Churning { env, .. }, _) => {
                Ok(env.expected_reward(&round.context, action)?)
            }
            (ScenarioData::Logged { rewards, .. }, Some(index)) => Ok(rewards[index][action]),
            (ScenarioData::Logged { .. }, None) => Err(ExperimentError::InvalidConfig {
                parameter: "round",
                message: "logged scenario received a synthetic round".to_owned(),
            }),
        }
    }

    /// Expected reward of the best action this round.
    pub fn optimal_reward(&self, round: &Round) -> Result<f64, ExperimentError> {
        match (self, round.logged_index) {
            (ScenarioData::Synthetic(env), _) => Ok(env.optimal_reward(&round.context)?),
            (ScenarioData::Drifting { env, .. }, _) => Ok(env.optimal_reward(&round.context)?),
            (ScenarioData::Churning { env, .. }, _) => Ok(env.optimal_reward(&round.context)?),
            (ScenarioData::Logged { rewards, .. }, Some(index)) => Ok(rewards[index]
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)),
            (ScenarioData::Logged { .. }, None) => Err(ExperimentError::InvalidConfig {
                parameter: "round",
                message: "logged scenario received a synthetic round".to_owned(),
            }),
        }
    }

    /// Samples a public corpus of contexts to fit the encoder on — from the
    /// context distribution for synthetic scenarios, from the logged contexts
    /// (cycling) otherwise. Mirrors the paper's setup where the encoder is
    /// fitted once on public/historical data and shipped to devices.
    ///
    /// Round-aware scenarios sample from their *initial* state, exactly like
    /// a production encoder fitted on historical data before the
    /// non-stationarity it will face.
    pub fn encoder_corpus(&mut self, size: usize, rng: &mut StdRng) -> Vec<Vector> {
        match self {
            ScenarioData::Synthetic(env) => (0..size).map(|_| env.sample_context(rng)).collect(),
            ScenarioData::Drifting { env, .. } => {
                (0..size).map(|_| env.sample_context(rng)).collect()
            }
            ScenarioData::Churning { env, .. } => {
                (0..size).map(|_| env.sample_context(rng)).collect()
            }
            ScenarioData::Logged { contexts, .. } => (0..size)
                .map(|i| contexts[i % contexts.len()].clone())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn keys_and_figures_are_distinct() {
        let keys: std::collections::HashSet<_> =
            ScenarioKind::ALL.iter().map(ScenarioKind::key).collect();
        assert_eq!(keys.len(), ScenarioKind::ALL.len());
        assert_eq!(ScenarioKind::MultiLabel.to_string(), "multilabel");
        assert!(ScenarioKind::CriteoLike.paper_figure().contains('7'));
    }

    #[test]
    fn every_scenario_builds_and_produces_consistent_rounds() {
        let shape = ScenarioShape {
            logged_instances: 64,
            ..ScenarioShape::default()
        };
        for kind in ScenarioKind::ALL {
            let mut rng = StdRng::seed_from_u64(3);
            let mut data = ScenarioData::build(kind, &shape, &mut rng).unwrap();
            assert!(data.context_dimension() > 0, "{kind}");
            assert!(data.num_actions() > 1, "{kind}");
            for _ in 0..10 {
                let round = data.next_round(&mut rng);
                assert_eq!(round.context.len(), data.context_dimension());
                let optimal = data.optimal_reward(&round).unwrap();
                for a in 0..data.num_actions() {
                    let expected = data.expected_reward(&round, a).unwrap();
                    let realized = data.sample_reward(&round, a, &mut rng).unwrap();
                    assert!((0.0..=1.0).contains(&realized), "{kind} reward {realized}");
                    assert!(expected <= optimal + 1e-12);
                }
            }
            let corpus = data.encoder_corpus(16, &mut rng);
            assert_eq!(corpus.len(), 16);
        }
    }

    #[test]
    fn logged_rounds_cycle_deterministically() {
        let shape = ScenarioShape {
            logged_instances: 8,
            ..ScenarioShape::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let mut data = ScenarioData::build(ScenarioKind::MultiLabel, &shape, &mut rng).unwrap();
        let first = data.next_round(&mut rng).context;
        for _ in 0..7 {
            data.next_round(&mut rng);
        }
        let wrapped = data.next_round(&mut rng).context;
        assert_eq!(first.as_slice(), wrapped.as_slice());
    }
}
