//! Serving-scale cross-check for the shuffled regime.
//!
//! The matrix runner drives the sharded engine synchronously (one epoch at a
//! time) so cells stay bit-deterministic. This module wires the same shuffled
//! regime through [`p2b_sim::run_streaming_population`] — parallel producers
//! submitting straight into the engine spawned by a full [`p2b_core::P2bSystem`]
//! — so the figures binary can confirm that the utility-vs-privacy numbers
//! are not an artifact of the synchronous shape: reports are conserved and
//! the same per-batch (ε, δ) accounting comes back from the ledger.

use crate::{ExperimentError, MatrixConfig};
use p2b_core::{P2bConfig, P2bSystem};
use p2b_datasets::{ContextualEnvironment, SyntheticConfig, SyntheticPreferenceEnvironment};
use p2b_encoding::{KMeansConfig, KMeansEncoder};
use p2b_linalg::Vector;
use p2b_sim::{run_streaming_population, StreamingConfig, StreamingOutcome};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Runs one streaming wave of the shuffled regime over the synthetic
/// benchmark: `producers` threads simulate the configured population and
/// submit reports concurrently into the sharded engine of a [`P2bSystem`]
/// built from the matrix configuration.
///
/// Returns the [`StreamingOutcome`], whose ledger carries the per-batch
/// (ε, δ) records achieved at serving scale.
///
/// # Errors
///
/// Propagates environment, encoder, system and engine errors.
pub fn run_streaming_shuffle(
    config: &MatrixConfig,
    producers: usize,
    seed: u64,
) -> Result<StreamingOutcome, ExperimentError> {
    let env_config = SyntheticConfig::new(config.shape.context_dimension, config.shape.num_actions)
        .with_beta(config.shape.beta)
        .with_noise_variance(config.shape.noise_variance);

    let mut rng = StdRng::seed_from_u64(seed);
    let corpus: Vec<Vector> = {
        let mut env = SyntheticPreferenceEnvironment::new(env_config, &mut rng)?;
        (0..config.encoder_corpus_size)
            .map(|_| env.sample_context(&mut rng))
            .collect()
    };
    let encoder = KMeansEncoder::fit(
        &corpus,
        KMeansConfig::new(config.num_codes).with_iterations(20),
        &mut rng,
    )?;

    let p2b_config = P2bConfig::new(config.shape.context_dimension, config.shape.num_actions)
        .with_alpha(config.alpha)
        .with_participation(config.participation)
        .with_local_interactions(config.interactions_per_user)
        .with_shuffler_threshold(config.shuffler_threshold)
        .with_shuffler_shards(config.shuffler_shards)
        .with_shuffler_batch_size(config.shuffler_batch_size);
    let mut system = P2bSystem::new(p2b_config, Arc::new(encoder))?;

    let streaming = StreamingConfig::new(config.num_users)
        .with_interactions_per_user(config.interactions_per_user)
        .with_producers(producers.max(1))
        .with_seed(seed);
    Ok(run_streaming_population(
        &mut system,
        env_config,
        streaming,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MatrixConfig;

    #[test]
    fn streaming_wave_conserves_reports_and_accounts_batches() {
        let mut config = MatrixConfig::smoke();
        config.num_users = 40;
        config.interactions_per_user = 4;
        let outcome = run_streaming_shuffle(&config, 4, 17).unwrap();
        assert_eq!(outcome.interactions, 160);
        let received: u64 = outcome.round_stats.iter().map(|s| s.received as u64).sum();
        assert_eq!(received, outcome.submitted, "engine must conserve reports");
        assert_eq!(outcome.ledger.records().len(), outcome.round_stats.len());
        // p = 0.5: the ledger's shared ε is the paper's headline ln 2.
        assert!((outcome.ledger.per_report_epsilon() - std::f64::consts::LN_2).abs() < 1e-12);
    }
}
