//! Mergeable log-bucket latency histogram for the serving harness.
//!
//! The serve loop records one latency sample per decision on whichever
//! worker made the decision; per-worker histograms are then merged into one.
//! That dictates the design:
//!
//! * **Fixed bucket layout, no allocation on record.** HDR-style
//!   log-linear buckets: values below 2⁵ get exact unit buckets, every
//!   octave above is split into 2⁵ linear sub-buckets. Any `u64`
//!   nanosecond value lands in one of [`BUCKET_COUNT`] buckets with
//!   relative error at most 1/32 (~3%), plenty for p50/p95/p99 bars.
//! * **Merge = elementwise add.** Because the layout is value-determined
//!   (not adaptive), merging per-worker histograms is associative,
//!   commutative and lossless — the merged histogram is identical to one
//!   that recorded every sample itself. The property suite in
//!   `tests/histogram_props.rs` pins this.
//! * **Exact `min`/`max`/`sum` on the side**, so reported extremes and the
//!   mean are not quantized.
//!
//! Quantiles use the nearest-rank convention `rank = ⌊q·(n−1)⌋` and report
//! the lower bound of the bucket holding that rank (exact `min`/`max` at the
//! ends), so a reported quantile never exceeds the true one and is within
//! one bucket (≤ 1/32 relative) below it.

use serde::{Deserialize, Serialize};

/// log2 of the number of linear sub-buckets per octave.
const SUB_BUCKET_BITS: u32 = 5;
/// Number of linear sub-buckets per octave (32).
const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;
/// Total number of buckets needed to cover all of `u64`: 32 exact unit
/// buckets plus 32 sub-buckets for each of the 59 octaves above them (the
/// top octave's MSB shift runs up to 58, landing the final bucket at index
/// `58·32 + 63 = 1919`).
pub const BUCKET_COUNT: usize = ((64 - SUB_BUCKET_BITS + 1) * SUB_BUCKETS as u32) as usize;

/// Index of the bucket a value falls into.
///
/// Values below 32 get exact unit buckets; above that, the value's octave
/// is split into 32 linear sub-buckets.
#[must_use]
pub fn bucket_of(value: u64) -> usize {
    if value < SUB_BUCKETS {
        return value as usize;
    }
    let top = 63 - value.leading_zeros();
    let shift = top - SUB_BUCKET_BITS;
    // (value >> shift) is in [32, 64): sub-bucket plus an implicit octave
    // offset of 32, so octave s occupies indices [32(s+1), 32(s+2)).
    (shift as usize) * SUB_BUCKETS as usize + (value >> shift) as usize
}

/// Smallest value that lands in bucket `index` (the value the histogram
/// reports for quantiles resolved to this bucket).
#[must_use]
pub fn bucket_lower_bound(index: usize) -> u64 {
    debug_assert!(index < BUCKET_COUNT);
    let index = index as u64;
    if index < SUB_BUCKETS {
        return index;
    }
    let shift = index / SUB_BUCKETS - 1;
    let sub = index - shift * SUB_BUCKETS; // in [32, 64)
    sub << shift
}

/// Mergeable log-bucket histogram of `u64` nanosecond samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKET_COUNT],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, nanos: u64) {
        self.record_n(nanos, 1);
    }

    /// Records `n` occurrences of the same sample value.
    pub fn record_n(&mut self, nanos: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_of(nanos)] += n;
        self.count += n;
        self.sum += u128::from(nanos) * u128::from(n);
        self.min = self.min.min(nanos);
        self.max = self.max.max(nanos);
    }

    /// Folds another histogram into this one.
    ///
    /// Lossless: the result is identical to a histogram that recorded both
    /// sample streams itself, independent of merge order or grouping.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact smallest recorded sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest recorded sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean of the recorded samples (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile: the lower bound of the bucket holding rank
    /// `⌊q·(n−1)⌋`, with exact values at the extremes (`q = 0` reports the
    /// true min, `q = 1` the true max). Returns 0 on an empty histogram;
    /// `q` is clamped to `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * (self.count - 1) as f64).floor() as u64;
        if rank == 0 {
            return self.min;
        }
        if rank == self.count - 1 {
            return self.max;
        }
        let mut seen = 0u64;
        for (index, &bucket_count) in self.counts.iter().enumerate() {
            seen += bucket_count;
            if seen > rank {
                return bucket_lower_bound(index);
            }
        }
        self.max
    }

    /// Condenses the histogram into the serializable summary carried by
    /// `BENCH_serve.json`.
    #[must_use]
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            min_nanos: self.min(),
            mean_nanos: self.mean(),
            p50_nanos: self.quantile(0.50),
            p95_nanos: self.quantile(0.95),
            p99_nanos: self.quantile(0.99),
            max_nanos: self.max(),
        }
    }
}

/// Serializable latency digest: count plus min/mean/p50/p95/p99/max.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples behind the digest.
    pub count: u64,
    /// Exact smallest sample, nanoseconds.
    pub min_nanos: u64,
    /// Exact mean, nanoseconds.
    pub mean_nanos: f64,
    /// Median (bucket lower bound), nanoseconds.
    pub p50_nanos: u64,
    /// 95th percentile (bucket lower bound), nanoseconds.
    pub p95_nanos: u64,
    /// 99th percentile (bucket lower bound), nanoseconds.
    pub p99_nanos: u64,
    /// Exact largest sample, nanoseconds.
    pub max_nanos: u64,
}

impl LatencySummary {
    /// Copy with every wall-clock-derived field zeroed, keeping only the
    /// sample count — what golden tests compare, since timings vary run to
    /// run but the number of measured decisions must not.
    #[must_use]
    pub fn redact_timing(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            min_nanos: 0,
            mean_nanos: 0.0,
            p50_nanos: 0,
            p95_nanos: 0,
            p99_nanos: 0,
            max_nanos: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_exact_below_the_first_octave() {
        for v in 0..SUB_BUCKETS {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_lower_bound(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_bracket_their_values() {
        for v in [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            1_000,
            123_456,
            u32::MAX as u64,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let b = bucket_of(v);
            assert!(b < BUCKET_COUNT);
            let lo = bucket_lower_bound(b);
            assert!(lo <= v, "lower bound {lo} above value {v}");
            if b + 1 < BUCKET_COUNT {
                assert!(bucket_lower_bound(b + 1) > v, "value {v} past bucket {b}");
            }
            // Relative quantization error is bounded by one sub-bucket.
            assert!((v - lo) as f64 <= v as f64 / SUB_BUCKETS as f64 + 1.0);
        }
    }

    #[test]
    fn bucket_lower_bounds_strictly_increase() {
        for b in 1..BUCKET_COUNT {
            assert!(bucket_lower_bound(b) > bucket_lower_bound(b - 1), "at {b}");
        }
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let hist = LatencyHistogram::new();
        assert_eq!(hist.count(), 0);
        assert_eq!(hist.min(), 0);
        assert_eq!(hist.max(), 0);
        assert_eq!(hist.quantile(0.5), 0);
        assert_eq!(hist.mean(), 0.0);
    }

    #[test]
    fn quantiles_hit_exact_extremes() {
        let mut hist = LatencyHistogram::new();
        for v in [7u64, 100, 1_000, 50_000] {
            hist.record(v);
        }
        assert_eq!(hist.quantile(0.0), 7);
        assert_eq!(hist.quantile(1.0), 50_000);
        assert_eq!(hist.min(), 7);
        assert_eq!(hist.max(), 50_000);
        assert_eq!(hist.count(), 4);
    }

    #[test]
    fn summary_redaction_keeps_only_the_count() {
        let mut hist = LatencyHistogram::new();
        hist.record_n(123_456, 10);
        let redacted = hist.summary().redact_timing();
        assert_eq!(redacted.count, 10);
        assert_eq!(redacted.max_nanos, 0);
        assert_eq!(redacted.p99_nanos, 0);
    }
}
