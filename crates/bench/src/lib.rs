//! Shared plumbing for the figure-reproduction binaries and Criterion benches.
//!
//! Every binary in `src/bin/` regenerates one figure or table of the paper:
//! it runs the relevant experiment through [`p2b_sim`], prints the data series
//! as an aligned text table, and writes the same series as JSON under
//! `target/experiments/` so the numbers can be re-plotted and are recorded in
//! EXPERIMENTS.md.
//!
//! The experiment *scale* defaults to a laptop-friendly fraction of the
//! paper's setup (the paper sweeps up to 10⁶ users and 3 000 agents); set the
//! environment variable `P2B_SCALE=full` to run the original sizes, or
//! `P2B_SCALE=quick` for a smoke-test pass.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod failure;
pub mod histogram;
pub mod serve;

pub use failure::BenchFailure;
pub use histogram::{bucket_lower_bound, bucket_of, LatencyHistogram, LatencySummary};
pub use serve::{
    legacy_throughput_modes, DeterministicSummary, ServeConfig, ServeMode, ServeReport, SloConfig,
};

use p2b_sim::{Regime, SeriesPoint};
use std::path::PathBuf;

/// Experiment scale selected via the `P2B_SCALE` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minimal sizes for CI smoke tests (`P2B_SCALE=quick`).
    Quick,
    /// Default laptop-friendly sizes.
    Default,
    /// The paper's original sizes (`P2B_SCALE=full`).
    Full,
}

impl Scale {
    /// Reads the scale from the `P2B_SCALE` environment variable.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("P2B_SCALE").unwrap_or_default().as_str() {
            "quick" => Scale::Quick,
            "full" => Scale::Full,
            _ => Scale::Default,
        }
    }

    /// Picks one of three values according to the scale.
    #[must_use]
    pub fn pick<T>(&self, quick: T, default: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Default => default,
            Scale::Full => full,
        }
    }
}

/// Directory where figure binaries write their JSON result series.
#[must_use]
pub fn experiments_dir() -> PathBuf {
    PathBuf::from("target").join("experiments")
}

/// Prints a result series as an aligned table: one row per swept value, one
/// column per regime.
pub fn print_series(title: &str, series: &[SeriesPoint]) {
    println!("\n=== {title} ===");
    println!(
        "{:>14} {:>12} {:>18} {:>18}",
        "x", "cold", "warm non-private", "warm private (P2B)"
    );
    for point in series {
        let fetch = |regime: Regime| {
            point
                .outcome(regime)
                .map_or_else(|| "-".to_owned(), |o| format!("{:.4}", o.average_reward))
        };
        println!(
            "{:>14.3} {:>12} {:>18} {:>18}",
            point.value,
            fetch(Regime::Cold),
            fetch(Regime::WarmNonPrivate),
            fetch(Regime::WarmPrivate),
        );
    }
}

/// Writes a series to `target/experiments/<name>.json` and reports the path.
///
/// # Errors
///
/// Propagates filesystem errors from the underlying writer.
pub fn save_series(name: &str, series: &[SeriesPoint]) -> Result<PathBuf, p2b_sim::SimError> {
    let path = experiments_dir().join(format!("{name}.json"));
    p2b_sim::write_series_json(&path, series)?;
    println!("series written to {}", path.display());
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_picks_the_matching_value() {
        assert_eq!(Scale::Quick.pick(1, 2, 3), 1);
        assert_eq!(Scale::Default.pick(1, 2, 3), 2);
        assert_eq!(Scale::Full.pick(1, 2, 3), 3);
    }

    #[test]
    fn experiments_dir_is_under_target() {
        assert!(experiments_dir().starts_with("target"));
    }
}
