//! Closed-loop serving harness: the whole P2B pipeline under load.
//!
//! `p2b-serve` drives AgentPool checkout → LinUCB select → randomized
//! report → ShufflerEngine → coalesced ModelService ingest →
//! RewardJoinBuffer joins as **one** service fed by the seeded open-loop
//! arrival process of [`p2b_sim::ArrivalProcess`], under admission control
//! with a hard in-flight ceiling. It measures what a deployment would page
//! on — p50/p95/p99 decision latency, ingest lag (decision epoch vs applied
//! epoch), join-buffer occupancy, pool eviction rate — and emits
//! `BENCH_serve.json` with configurable SLO assertions.
//!
//! # Execution model
//!
//! A thread-per-core event loop on the vendored crossbeam channels: `W`
//! persistent workers each own the [`AgentPool`] partition for the codes
//! hashed to them (`splitmix64(code) % W`) plus a local
//! [`LatencyHistogram`]; the main thread owns the [`P2bSystem`], the
//! [`RewardJoinBuffer`] and the arrival clock. Per round it admits up to
//! `events_per_round` arrivals through the join buffer's ceiling
//! ([`RewardJoinBuffer::try_record`] sheds the rest — open-loop load does
//! not wait), fans `Decide` jobs to the owning workers, joins the rewards
//! that came due, finalizes the round, and fans `Fold` jobs for the joined
//! decisions. Every `rounds_per_epoch` rounds the workers' report outboxes
//! are drained, canonically sorted, and flushed through
//! [`P2bSystem::streaming_round`]; the refreshed epoch snapshot is then
//! broadcast to the workers as a new [`AgentSource`].
//!
//! # Determinism contract
//!
//! The **deterministic summary** (admitted/shed/joined/expired counts,
//! report conservation, epochs, ingest-lag and occupancy integers) is
//! byte-identical across runs *and across worker counts*. Three mechanisms
//! buy this:
//!
//! 1. every per-event random variable (select RNG, fold RNG, reward
//!    presence/delay/noise) derives from the arrival process's pure
//!    counter-based noise lanes, never from a shared RNG stream;
//! 2. per-worker job channels are FIFO and jobs for one code always go to
//!    one worker, so each agent sees its events in arrival order no matter
//!    how many workers exist;
//! 3. reports are canonically sorted before each engine flush, so the
//!    shuffler sees an identical stream regardless of which worker drained
//!    which report first.
//!
//! Wall-clock measurements (latency quantiles, throughput) and pool
//! counters (eviction timing depends on the code partition) are reported
//! but excluded from the summary; [`ServeReport::redacted`] zeroes them for
//! golden comparisons.
//!
//! The legacy `throughput` binary's three ad-hoc parts live on as
//! [`ServeMode::Ingest`], [`ServeMode::Pool`] and [`ServeMode::Select`],
//! re-based onto the same arrival process so every subsystem is benchmarked
//! on identical skewed traffic.

use crate::failure::BenchFailure;
use crate::histogram::{LatencyHistogram, LatencySummary};
use crate::Scale;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use p2b_bandit::{
    Action, CoalescedUpdate, ContextualPolicy, F32Scorer, IngestScratch, LinUcb, LinUcbConfig,
    SelectScratch, SelectScratchF32,
};
use p2b_core::{
    AgentPool, AgentPoolConfig, AgentSource, CentralServer, ModelService, P2bConfig, P2bSystem,
    PoolStats, RewardJoinBuffer, SecureIngestService,
};
use p2b_encoding::{Encoder, KMeansConfig, KMeansEncoder};
use p2b_linalg::Vector;
use p2b_shuffler::{
    splitmix64, EncodedReport, RawReport, ShuffledBatch, Shuffler, ShufflerConfig, ShufflerEngine,
};
use p2b_sim::{ArrivalConfig, ArrivalProcess, LANE_CONSUMER_BASE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Instant;

/// Noise lane seeding each decision's selection RNG.
const LANE_SELECT_SEED: u64 = LANE_CONSUMER_BASE;
/// Noise lane seeding each joined decision's fold RNG.
const LANE_FOLD_SEED: u64 = LANE_CONSUMER_BASE + 1;
/// Noise lane deciding whether a decision ever gets a reward.
const LANE_REWARD_PRESENT: u64 = LANE_CONSUMER_BASE + 2;
/// Noise lane drawing the reward's delivery delay in rounds.
const LANE_REWARD_DELAY: u64 = LANE_CONSUMER_BASE + 3;
/// Noise lane adding stochastic reward noise off the target action.
const LANE_REWARD_NOISE: u64 = LANE_CONSUMER_BASE + 4;
/// Noise lane drawing synthetic actions for the legacy ingest stream.
const LANE_LEGACY_ACTION: u64 = LANE_CONSUMER_BASE + 5;
/// Noise lane drawing synthetic 0/1 rewards for the legacy ingest stream.
const LANE_LEGACY_REWARD: u64 = LANE_CONSUMER_BASE + 6;

/// Which subsystem slice of the harness to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Single-decision LinUCB select throughput (legacy `--select`).
    Select,
    /// Shuffler-engine shard scaling + central-model ingest scaling (the
    /// legacy default parts).
    Ingest,
    /// Bounded agent-pool serving throughput (legacy `--pool`).
    Pool,
    /// The closed-loop service: everything at once, with SLOs.
    Full,
}

impl ServeMode {
    /// Parses a `--mode` value.
    #[must_use]
    pub fn parse(value: &str) -> Option<Self> {
        match value {
            "select" => Some(ServeMode::Select),
            "ingest" => Some(ServeMode::Ingest),
            "pool" => Some(ServeMode::Pool),
            "full" => Some(ServeMode::Full),
            _ => None,
        }
    }

    /// The canonical `--mode` spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ServeMode::Select => "select",
            ServeMode::Ingest => "ingest",
            ServeMode::Pool => "pool",
            ServeMode::Full => "full",
        }
    }
}

/// Maps the legacy `throughput` binary's part-selection flags onto harness
/// modes: `--pool` and `--select` run only their part, no flag runs the
/// historical default sequence (engine+ingest, then pool, then select).
#[must_use]
pub fn legacy_throughput_modes(args: &[String]) -> Vec<ServeMode> {
    if args.iter().any(|a| a == "--pool") {
        vec![ServeMode::Pool]
    } else if args.iter().any(|a| a == "--select") {
        vec![ServeMode::Select]
    } else {
        vec![ServeMode::Ingest, ServeMode::Pool, ServeMode::Select]
    }
}

/// Configuration of one closed-loop run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Worker threads (each owns a pool partition). Changes wall-clock
    /// behavior only, never the deterministic summary.
    pub workers: usize,
    /// Simulated user population the arrival process draws from.
    pub users: u64,
    /// Distinct context codes (the pool's key space).
    pub codes: u64,
    /// Total arrival events offered to admission control.
    pub events: u64,
    /// Arrivals offered per round (the round is the join/fold cadence).
    pub events_per_round: u64,
    /// Rounds between engine flushes (epoch boundaries).
    pub rounds_per_epoch: u64,
    /// Join window: rewards may arrive up to this many rounds late.
    pub max_delay: u64,
    /// Hard ceiling on in-flight decisions; arrivals beyond it are shed.
    pub in_flight_ceiling: usize,
    /// Residency budget of each worker's agent-pool partition.
    pub pool_budget: usize,
    /// Raw context dimension `d`.
    pub dimension: usize,
    /// Number of actions.
    pub actions: usize,
    /// Crowd-blending threshold `l` of the shuffler.
    pub threshold: usize,
    /// Local interactions `T` between reporting opportunities.
    pub local_interactions: u64,
    /// Engine batch size; kept above the per-flush report volume so each
    /// flush releases exactly one batch (deterministic epoch cadence).
    pub shuffler_batch_size: usize,
    /// Probability a decision's reward ever materializes.
    pub reward_probability: f64,
    /// Seed for the arrival process, all noise lanes and flush seeds.
    pub seed: u64,
}

impl ServeConfig {
    /// The closed-loop configuration at a benchmark scale.
    #[must_use]
    pub fn at_scale(scale: Scale) -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(scale.pick(4, 8, 16)),
            users: scale.pick(50_000, 500_000, 2_000_000),
            codes: scale.pick(64, 128, 256),
            events: scale.pick(4_000, 50_000, 400_000),
            events_per_round: scale.pick(256, 1_024, 4_096),
            rounds_per_epoch: 2,
            max_delay: 3,
            in_flight_ceiling: scale.pick(640, 2_048, 8_192),
            pool_budget: scale.pick(16, 32, 64),
            dimension: 16,
            actions: 10,
            threshold: scale.pick(2, 10, 10),
            local_interactions: 2,
            shuffler_batch_size: 1 << 20,
            reward_probability: 0.75,
            seed: 42,
        }
    }

    /// The miniature configuration behind the `tiny_serve.json` golden:
    /// small enough to run in milliseconds, large enough to exercise
    /// shedding, expiry, late rewards and several epochs.
    #[must_use]
    pub fn tiny() -> Self {
        Self {
            workers: 2,
            users: 1_000,
            codes: 16,
            events: 600,
            events_per_round: 64,
            rounds_per_epoch: 2,
            max_delay: 2,
            in_flight_ceiling: 160,
            pool_budget: 6,
            dimension: 8,
            actions: 5,
            threshold: 2,
            local_interactions: 1,
            shuffler_batch_size: 1 << 20,
            reward_probability: 0.75,
            seed: 42,
        }
    }

    /// Total rounds the event stream spans.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.events.div_ceil(self.events_per_round.max(1))
    }
}

/// Service-level objectives asserted over a [`ServeReport`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloConfig {
    /// Ceiling on p99 decision latency, nanoseconds.
    pub max_p99_decision_nanos: u64,
    /// Ceiling on the worst observed ingest lag, epochs.
    pub max_ingest_lag_epochs: u64,
    /// Ceiling on peak join-buffer occupancy (should equal the admission
    /// ceiling — the buffer must never exceed it).
    pub max_join_occupancy: u64,
}

impl SloConfig {
    /// Defaults generous enough for CI machines: 5 ms p99 decisions, lag
    /// bounded by the join window's epoch span, occupancy bounded by the
    /// admission ceiling.
    #[must_use]
    pub fn for_config(config: &ServeConfig) -> Self {
        Self {
            max_p99_decision_nanos: 5_000_000,
            max_ingest_lag_epochs: (config.max_delay + 1).div_ceil(config.rounds_per_epoch) + 1,
            max_join_occupancy: config.in_flight_ceiling as u64,
        }
    }
}

/// One ingest-lag bucket: how many joined decisions were finalized `lag`
/// epochs after the epoch they were decided in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestLagBucket {
    /// Applied epoch minus decided epoch.
    pub lag_epochs: u64,
    /// Joined decisions finalized at this lag.
    pub decisions: u64,
}

/// The worker-count-invariant, wall-clock-free portion of a run: pure
/// counts and epochs. Two runs of the same [`ServeConfig`] — at *any*
/// worker count — must produce byte-identical summaries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeterministicSummary {
    /// Arrivals offered to admission control.
    pub events: u64,
    /// Arrivals admitted (decisions made).
    pub admitted: u64,
    /// Arrivals shed by the in-flight ceiling.
    pub shed: u64,
    /// Decisions finalized with a joined reward.
    pub joined: u64,
    /// Decisions finalized without a reward.
    pub expired: u64,
    /// Decisions still in flight when the service shut down.
    pub in_flight_at_shutdown: u64,
    /// Reward deliveries that arrived after their ticket finalized.
    pub late_rewards: u64,
    /// Reports drained from the pools and submitted to the engine.
    pub reports_submitted: u64,
    /// Reports the shuffler released past the crowd-blending threshold.
    pub reports_released: u64,
    /// Reports the central model accepted.
    pub reports_accepted: u64,
    /// Rounds driven.
    pub rounds: u64,
    /// Engine flushes (epoch boundaries, plus the shutdown flush).
    pub flushes: u64,
    /// Central-model epoch after the final flush.
    pub final_epoch: u64,
    /// High-water mark of join-buffer occupancy.
    pub peak_join_occupancy: u64,
    /// Sum of per-round occupancy samples (divide by `rounds` for the mean).
    pub join_occupancy_sum: u64,
    /// Ingest-lag histogram over joined decisions, ascending by lag.
    pub ingest_lag: Vec<IngestLagBucket>,
}

/// Wall-clock throughput of the run (excluded from the summary).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputSection {
    /// End-to-end wall time, seconds.
    pub wall_secs: f64,
    /// Admitted decisions per wall-clock second.
    pub decisions_per_sec: f64,
}

/// Merged agent-pool counters (worker-partition dependent, so excluded
/// from the deterministic summary).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolSection {
    /// Agents created across all partitions.
    pub creations: u64,
    /// Budget-pressure evictions across all partitions.
    pub evictions: u64,
    /// Dormant agents rehydrated across all partitions.
    pub rehydrations: u64,
    /// Warm-checkout fraction.
    pub hit_rate: f64,
    /// Evictions per 1 000 admitted decisions.
    pub evictions_per_1k_decisions: f64,
}

/// SLO verdict carried in the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloSection {
    /// The bars the run was held to.
    pub limits: SloConfig,
    /// Human-readable violations; empty when the run passed.
    pub violations: Vec<String>,
    /// Whether every bar held.
    pub pass: bool,
}

/// Everything `BENCH_serve.json` carries for a full closed-loop run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Schema version of this report layout.
    pub schema_version: u32,
    /// Harness mode (always `"full"` for the closed loop).
    pub mode: String,
    /// Benchmark scale label (`quick`/`default`/`full`/`tiny`).
    pub scale: String,
    /// The run's configuration.
    pub config: ServeConfig,
    /// The worker-count-invariant counts-and-epochs summary.
    pub deterministic: DeterministicSummary,
    /// Decision latency digest (checkout + select + checkin).
    pub decision_latency: LatencySummary,
    /// Per-epoch flush latency digest: drain barrier + canonical sort +
    /// engine flush + coalesced ingest + snapshot assembly, one sample per
    /// flush (including the shutdown flush).
    pub flush_latency: LatencySummary,
    /// Wall-clock throughput.
    pub throughput: ThroughputSection,
    /// Merged pool counters.
    pub pool: PoolSection,
    /// SLO verdict.
    pub slo: SloSection,
}

impl ServeReport {
    /// Copy with every wall-clock-derived or worker-partition-dependent
    /// field normalized away: latency timings zeroed, throughput zeroed,
    /// pool counters zeroed, worker count zeroed, SLO verdict cleared. What
    /// remains — schema, configuration and the deterministic summary — must
    /// be byte-identical across runs and worker counts; the golden test
    /// pins it.
    #[must_use]
    pub fn redacted(&self) -> ServeReport {
        let mut redacted = self.clone();
        redacted.config.workers = 0;
        redacted.decision_latency = self.decision_latency.redact_timing();
        redacted.flush_latency = self.flush_latency.redact_timing();
        redacted.throughput = ThroughputSection {
            wall_secs: 0.0,
            decisions_per_sec: 0.0,
        };
        redacted.pool = PoolSection {
            creations: 0,
            evictions: 0,
            rehydrations: 0,
            hit_rate: 0.0,
            evictions_per_1k_decisions: 0.0,
        };
        redacted.slo.violations.clear();
        redacted.slo.pass = true;
        redacted
    }
}

/// Payload recorded with each in-flight decision.
struct InFlight {
    index: u64,
    code: u64,
    decided_epoch: u64,
}

/// Work items on a worker's FIFO channel.
#[derive(Debug)]
enum Job {
    /// Make the decision for arrival `index`.
    Decide { index: u64, code: u64 },
    /// Fold the joined reward for arrival `index` into its agent.
    Fold {
        index: u64,
        code: u64,
        action: usize,
        reward: f64,
    },
    /// Point subsequent checkouts at a new epoch snapshot.
    Refresh(AgentSource),
    /// Hand the drained report outbox back (epoch boundary).
    Drain,
    /// Shut down: park agents, return reports, histogram and stats.
    Finish,
}

/// Worker responses on the shared reply channel.
#[derive(Debug)]
enum Reply {
    Decided {
        index: u64,
        action: usize,
    },
    Drained {
        reports: Vec<RawReport>,
    },
    Finished {
        reports: Vec<RawReport>,
        histogram: Box<LatencyHistogram>,
        stats: PoolStats,
    },
}

/// Maps a uniform `u64` onto `0..n` without modulo bias.
fn bounded_draw(noise: u64, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((u128::from(noise) * u128::from(n)) >> 64) as u64
}

/// Maps a uniform `u64` onto `[0, 1)`.
fn unit_draw(noise: u64) -> f64 {
    (noise >> 11) as f64 / (1u64 << 53) as f64
}

/// The worker that owns the pool partition for code `c` under `workers`
/// partitions.
fn owner_of(code: u64, workers: usize) -> usize {
    (splitmix64(code) % workers as u64) as usize
}

/// One deterministic raw context per code, shared by every worker.
fn code_contexts(codes: u64, dimension: usize) -> Vec<Vector> {
    (0..codes as usize)
        .map(|c| {
            let mut raw = vec![0.05; dimension];
            raw[c % dimension] = 1.0 + 0.05 * ((c / dimension) % 7) as f64;
            raw[(c / 3) % dimension] += 0.25;
            Vector::from(raw)
                .normalized_l1()
                .expect("contexts are non-empty")
        })
        .collect()
}

/// Fits the k-means encoder the serving system validates against.
fn fit_serve_encoder(codes: u64, dimension: usize) -> Arc<dyn Encoder> {
    let mut rng = StdRng::seed_from_u64(7);
    let corpus: Vec<Vector> = (0..codes as usize * 8)
        .map(|i| {
            let mut raw = vec![0.05; dimension];
            raw[i % dimension] = 1.0 + 0.05 * ((i / dimension) % 7) as f64;
            raw[(i / 3) % dimension] += 0.25;
            Vector::from(raw).normalized_l1().expect("non-empty")
        })
        .collect();
    Arc::new(
        KMeansEncoder::fit(
            &corpus,
            KMeansConfig::new(codes as usize).with_iterations(10),
            &mut rng,
        )
        .expect("corpus is larger than k"),
    )
}

/// Canonical report order: (sender, timestamp, code, action, reward bits).
/// Reports are drained from per-worker outboxes in a partition-dependent
/// order; sorting by content restores a stream that is identical for every
/// worker count before it reaches the shuffler engine.
fn canonical_sort(reports: &mut [RawReport]) {
    reports.sort_by(|a, b| {
        let ka = (
            &a.metadata().sender,
            a.metadata().timestamp,
            a.payload().code(),
            a.payload().action(),
            a.payload().reward().to_bits(),
        );
        let kb = (
            &b.metadata().sender,
            b.metadata().timestamp,
            b.payload().code(),
            b.payload().action(),
            b.payload().reward().to_bits(),
        );
        ka.cmp(&kb)
    });
}

/// The persistent worker loop: owns one pool partition and a latency
/// histogram; processes its FIFO job stream until `Finish`.
#[allow(clippy::needless_pass_by_value)]
fn worker_loop(
    jobs: Receiver<Job>,
    replies: Sender<Reply>,
    mut source: AgentSource,
    arrival: &ArrivalProcess,
    contexts: &[Vector],
    pool_budget: usize,
) {
    let mut pool =
        AgentPool::new(AgentPoolConfig::bounded(pool_budget)).expect("a positive budget is valid");
    let mut histogram = LatencyHistogram::new();
    while let Ok(job) = jobs.recv() {
        match job {
            Job::Decide { index, code } => {
                let mut rng = StdRng::seed_from_u64(arrival.noise(index, LANE_SELECT_SEED));
                let context = &contexts[code as usize];
                let started = Instant::now();
                let action = pool
                    .with_agent_at(&source, code, |agent| {
                        agent.select_action(context, &mut rng)
                    })
                    .expect("decisions on well-formed contexts succeed");
                histogram.record(started.elapsed().as_nanos() as u64);
                replies
                    .send(Reply::Decided {
                        index,
                        action: action.index(),
                    })
                    .expect("main thread outlives workers");
            }
            Job::Fold {
                index,
                code,
                action,
                reward,
            } => {
                let mut rng = StdRng::seed_from_u64(arrival.noise(index, LANE_FOLD_SEED));
                let context = &contexts[code as usize];
                pool.with_agent_at(&source, code, |agent| {
                    agent.observe_reward(context, Action::new(action), reward, &mut rng)
                })
                .expect("folds of joined rewards succeed");
            }
            Job::Refresh(next) => source = next,
            Job::Drain => {
                replies
                    .send(Reply::Drained {
                        reports: pool.drain_reports(),
                    })
                    .expect("main thread outlives workers");
            }
            Job::Finish => {
                pool.park_all();
                let reports = pool.drain_reports();
                let stats = *pool.stats();
                replies
                    .send(Reply::Finished {
                        reports,
                        histogram: Box::new(histogram),
                        stats,
                    })
                    .expect("main thread outlives workers");
                return;
            }
        }
    }
}

/// Runs the closed-loop service and assembles its report.
///
/// # Panics
///
/// Panics when an internal invariant breaks (decision conservation, report
/// conservation through the engine) — benchmark binaries treat broken
/// invariants as fatal.
#[must_use]
pub fn run_full(config: &ServeConfig, slo: &SloConfig, scale_label: &str) -> ServeReport {
    let workers = config.workers.max(1);
    let arrival = ArrivalProcess::new(ArrivalConfig::new(config.users, config.codes, config.seed))
        .expect("serve configurations are valid");
    let contexts = code_contexts(config.codes, config.dimension);
    let system_config = P2bConfig::new(config.dimension, config.actions)
        .with_local_interactions(config.local_interactions)
        .with_shuffler_threshold(config.threshold)
        .with_shuffler_batch_size(config.shuffler_batch_size);
    let mut system = P2bSystem::new(
        system_config,
        fit_serve_encoder(config.codes, config.dimension),
    )
    .expect("serve configurations are valid");
    let mut source = AgentSource::capture(&mut system).expect("snapshot capture succeeds");

    let mut join: RewardJoinBuffer<InFlight> =
        RewardJoinBuffer::new(config.max_delay).with_in_flight_ceiling(config.in_flight_ceiling);
    let rounds = config.rounds();
    // Rewards scheduled past the last round are simply never delivered —
    // the service shuts down with those decisions in flight.
    let mut due_rewards: Vec<Vec<(p2b_core::DecisionTicket, f64)>> =
        (0..rounds).map(|_| Vec::new()).collect();
    let mut actions_by_index: HashMap<u64, usize> = HashMap::new();
    let mut tickets_by_index: HashMap<u64, p2b_core::DecisionTicket> = HashMap::new();

    let mut lag_counts: BTreeMap<u64, u64> = BTreeMap::new();
    let mut occupancy_sum = 0u64;
    let mut reports_submitted = 0u64;
    let mut reports_released = 0u64;
    let mut reports_accepted = 0u64;
    let mut flushes = 0u64;
    let mut admitted = 0u64;
    let mut histogram = LatencyHistogram::new();
    let mut flush_histogram = LatencyHistogram::new();
    let mut pool_stats_sum = PoolStats::default();
    let mut in_flight_at_shutdown = 0u64;
    let mut wall_secs = 0.0f64;

    let reply_channels: (Sender<Reply>, Receiver<Reply>) = unbounded();
    let (reply_tx, reply_rx) = reply_channels;
    let mut job_txs: Vec<Sender<Job>> = Vec::with_capacity(workers);
    let mut job_rxs: Vec<Receiver<Job>> = Vec::with_capacity(workers);
    for _ in 0..workers {
        // Capacity covers one round's decides plus one window's folds, so
        // the main thread never blocks on a send; the reply channel is
        // unbounded, so workers never block either — no deadlock is
        // possible.
        let (tx, rx) =
            bounded((config.events_per_round as usize + config.in_flight_ceiling + 16).max(64));
        job_txs.push(tx);
        job_rxs.push(rx);
    }

    std::thread::scope(|scope| {
        for rx in job_rxs.drain(..) {
            let replies = reply_tx.clone();
            let initial = source.clone();
            let arrival_ref = &arrival;
            let contexts_ref = &contexts;
            let budget = config.pool_budget;
            scope.spawn(move || {
                worker_loop(rx, replies, initial, arrival_ref, contexts_ref, budget);
            });
        }
        drop(reply_tx);

        let started = Instant::now();
        let mut next_event = 0u64;
        let mut flush_reports: Vec<RawReport> = Vec::new();
        for round in 0..rounds {
            // ── Admission + decide fan-out ──────────────────────────────
            let offered = (config.events - next_event).min(config.events_per_round);
            let mut sent = 0usize;
            for index in next_event..next_event + offered {
                let event = arrival.event(index);
                let payload = InFlight {
                    index,
                    code: event.code,
                    decided_epoch: source.epoch(),
                };
                let Some(ticket) = join.try_record(payload) else {
                    continue; // shed: open-loop arrivals do not wait.
                };
                tickets_by_index.insert(index, ticket);
                admitted += 1;
                job_txs[owner_of(event.code, workers)]
                    .send(Job::Decide {
                        index,
                        code: event.code,
                    })
                    .expect("workers outlive the run");
                sent += 1;
            }
            next_event += offered;

            // ── Decision barrier (replies arrive in any order) ──────────
            let mut decided: Vec<(u64, usize)> = Vec::with_capacity(sent);
            for _ in 0..sent {
                match reply_rx.recv().expect("workers outlive the run") {
                    Reply::Decided { index, action } => decided.push((index, action)),
                    _ => unreachable!("only Decided replies are in flight here"),
                }
            }
            decided.sort_unstable_by_key(|&(index, _)| index);

            // ── Reward scheduling (pure per-event noise) ────────────────
            for &(index, action) in &decided {
                actions_by_index.insert(index, action);
                if unit_draw(arrival.noise(index, LANE_REWARD_PRESENT)) >= config.reward_probability
                {
                    continue; // no reward ever: the decision will expire.
                }
                // Delay in 0..=max_delay+1: the last value lands after the
                // window closes, exercising the late-reward path.
                let delay = bounded_draw(
                    arrival.noise(index, LANE_REWARD_DELAY),
                    config.max_delay + 2,
                );
                let event = arrival.event(index);
                let target = (event.code % config.actions as u64) as usize;
                // Correct action pays 1; anything else pays 1 with 10%
                // probability (noise), so expired/late paths see both values.
                let noisy_hit = unit_draw(arrival.noise(index, LANE_REWARD_NOISE)) < 0.1;
                let reward = if action == target || noisy_hit {
                    1.0
                } else {
                    0.0
                };
                let due = round + delay;
                if due < rounds {
                    due_rewards[due as usize].push((tickets_by_index[&index], reward));
                }
            }

            // ── Deliver due rewards (late ones are counted and dropped) ─
            for (ticket, reward) in due_rewards[round as usize].drain(..) {
                let _ = join
                    .join(ticket, reward)
                    .expect("scheduled rewards are well-formed");
            }

            // ── Finalize the round; fold joined rewards ─────────────────
            let finalized = join.advance_round();
            for joined in &finalized.joined {
                let lag = source.epoch() - joined.payload.decided_epoch;
                *lag_counts.entry(lag).or_insert(0) += 1;
                let action = actions_by_index
                    .remove(&joined.payload.index)
                    .expect("every admitted decision recorded its action");
                tickets_by_index.remove(&joined.payload.index);
                job_txs[owner_of(joined.payload.code, workers)]
                    .send(Job::Fold {
                        index: joined.payload.index,
                        code: joined.payload.code,
                        action,
                        reward: joined.reward,
                    })
                    .expect("workers outlive the run");
            }
            for expired in &finalized.expired {
                actions_by_index.remove(&expired.payload.index);
                tickets_by_index.remove(&expired.payload.index);
            }
            occupancy_sum += join.pending() as u64;

            // ── Epoch boundary: drain, flush, refresh ───────────────────
            if (round + 1) % config.rounds_per_epoch == 0 || round + 1 == rounds {
                let flush_started = Instant::now();
                for tx in &job_txs {
                    tx.send(Job::Drain).expect("workers outlive the run");
                }
                for _ in 0..workers {
                    match reply_rx.recv().expect("workers outlive the run") {
                        Reply::Drained { reports } => flush_reports.extend(reports),
                        _ => unreachable!("only Drained replies are in flight here"),
                    }
                }
                canonical_sort(&mut flush_reports);
                reports_submitted += flush_reports.len() as u64;
                let flush_seed = splitmix64(config.seed ^ (0xF1A5 << 16) ^ flushes);
                let (round_stats, _ledger) = system
                    .streaming_round(std::mem::take(&mut flush_reports), flush_seed)
                    .expect("engine flushes succeed");
                for stats in &round_stats {
                    reports_released += stats.released as u64;
                    reports_accepted += stats.accepted;
                }
                flushes += 1;
                source = AgentSource::capture(&mut system).expect("snapshot capture succeeds");
                flush_histogram.record(flush_started.elapsed().as_nanos() as u64);
                for tx in &job_txs {
                    tx.send(Job::Refresh(source.clone()))
                        .expect("workers outlive the run");
                }
            }
        }

        // ── Shutdown: whatever is still pending stays in flight ─────────
        in_flight_at_shutdown = join.pending() as u64;
        for tx in &job_txs {
            tx.send(Job::Finish).expect("workers outlive the run");
        }
        let mut final_reports: Vec<RawReport> = Vec::new();
        for _ in 0..workers {
            match reply_rx.recv().expect("workers outlive the run") {
                Reply::Finished {
                    reports,
                    histogram: worker_hist,
                    stats,
                } => {
                    final_reports.extend(reports);
                    histogram.merge(&worker_hist);
                    pool_stats_sum.hits += stats.hits;
                    pool_stats_sum.creations += stats.creations;
                    pool_stats_sum.rehydrations += stats.rehydrations;
                    pool_stats_sum.evictions += stats.evictions;
                }
                _ => unreachable!("only Finished replies are in flight here"),
            }
        }
        if !final_reports.is_empty() {
            let flush_started = Instant::now();
            canonical_sort(&mut final_reports);
            reports_submitted += final_reports.len() as u64;
            let flush_seed = splitmix64(config.seed ^ (0xF1A5 << 16) ^ flushes);
            let (round_stats, _ledger) = system
                .streaming_round(final_reports, flush_seed)
                .expect("engine flushes succeed");
            for stats in &round_stats {
                reports_released += stats.released as u64;
                reports_accepted += stats.accepted;
            }
            flushes += 1;
            source = AgentSource::capture(&mut system).expect("snapshot capture succeeds");
            flush_histogram.record(flush_started.elapsed().as_nanos() as u64);
        }
        wall_secs = started.elapsed().as_secs_f64();
    });

    // ── Conservation invariants ─────────────────────────────────────────
    let join_stats = *join.stats();
    assert_eq!(
        admitted,
        join_stats.joined + join_stats.expired + in_flight_at_shutdown,
        "decision conservation violated: every admitted decision must be \
         joined, expired or in flight at shutdown"
    );
    assert_eq!(
        admitted + join_stats_shed(&join),
        config.events,
        "admission conservation violated: offered = admitted + shed"
    );
    assert!(
        join.peak_pending() <= config.in_flight_ceiling,
        "the admission ceiling was breached"
    );

    let deterministic = DeterministicSummary {
        events: config.events,
        admitted,
        shed: join.shed(),
        joined: join_stats.joined,
        expired: join_stats.expired,
        in_flight_at_shutdown,
        late_rewards: join_stats.late_rewards,
        reports_submitted,
        reports_released,
        reports_accepted,
        rounds,
        flushes,
        final_epoch: source.epoch(),
        peak_join_occupancy: join.peak_pending() as u64,
        join_occupancy_sum: occupancy_sum,
        ingest_lag: lag_counts
            .into_iter()
            .map(|(lag_epochs, decisions)| IngestLagBucket {
                lag_epochs,
                decisions,
            })
            .collect(),
    };

    let decision_latency = histogram.summary();
    let checkouts = pool_stats_sum.hits + pool_stats_sum.misses();
    let pool = PoolSection {
        creations: pool_stats_sum.creations,
        evictions: pool_stats_sum.evictions,
        rehydrations: pool_stats_sum.rehydrations,
        hit_rate: pool_stats_sum.hits as f64 / checkouts.max(1) as f64,
        evictions_per_1k_decisions: pool_stats_sum.evictions as f64 * 1_000.0
            / admitted.max(1) as f64,
    };

    let worst_lag = deterministic
        .ingest_lag
        .iter()
        .map(|b| b.lag_epochs)
        .max()
        .unwrap_or(0);
    let mut violations = Vec::new();
    if decision_latency.p99_nanos > slo.max_p99_decision_nanos {
        violations.push(format!(
            "p99 decision latency {} ns exceeds the {} ns bar",
            decision_latency.p99_nanos, slo.max_p99_decision_nanos
        ));
    }
    if worst_lag > slo.max_ingest_lag_epochs {
        violations.push(format!(
            "worst ingest lag {} epochs exceeds the {} epoch bar",
            worst_lag, slo.max_ingest_lag_epochs
        ));
    }
    if deterministic.peak_join_occupancy > slo.max_join_occupancy {
        violations.push(format!(
            "peak join occupancy {} exceeds the {} bar",
            deterministic.peak_join_occupancy, slo.max_join_occupancy
        ));
    }
    let pass = violations.is_empty();

    ServeReport {
        schema_version: 2,
        mode: ServeMode::Full.name().to_owned(),
        scale: scale_label.to_owned(),
        config: config.clone(),
        deterministic,
        decision_latency,
        flush_latency: flush_histogram.summary(),
        throughput: ThroughputSection {
            wall_secs,
            decisions_per_sec: admitted as f64 / wall_secs.max(1e-12),
        },
        pool,
        slo: SloSection {
            limits: *slo,
            violations,
            pass,
        },
    }
}

/// The buffer's shed counter (helper so the conservation assertion reads as
/// an equation over the buffer's own accounting).
fn join_stats_shed(join: &RewardJoinBuffer<InFlight>) -> u64 {
    join.shed()
}

/// Prints the human-readable summary of a closed-loop run.
pub fn print_full_report(report: &ServeReport) {
    let d = &report.deterministic;
    let l = &report.decision_latency;
    println!(
        "\nClosed-loop serve: {} events over {} codes, {} workers",
        d.events, report.config.codes, report.config.workers
    );
    println!(
        "admitted {} / shed {} | joined {} expired {} in-flight {} | late rewards {}",
        d.admitted, d.shed, d.joined, d.expired, d.in_flight_at_shutdown, d.late_rewards
    );
    println!(
        "reports: {} submitted, {} released, {} accepted over {} flushes (final epoch {})",
        d.reports_submitted, d.reports_released, d.reports_accepted, d.flushes, d.final_epoch
    );
    println!(
        "decision latency (ns): p50 {} p95 {} p99 {} max {} over {} decisions",
        l.p50_nanos, l.p95_nanos, l.p99_nanos, l.max_nanos, l.count
    );
    let f = &report.flush_latency;
    println!(
        "epoch flush latency (us): p50 {} p95 {} max {} over {} flushes",
        f.p50_nanos / 1_000,
        f.p95_nanos / 1_000,
        f.max_nanos / 1_000,
        f.count
    );
    let mean_occupancy = d.join_occupancy_sum as f64 / d.rounds.max(1) as f64;
    println!(
        "join occupancy: peak {} mean {:.1} (ceiling {})",
        d.peak_join_occupancy, mean_occupancy, report.config.in_flight_ceiling
    );
    let lag: Vec<String> = d
        .ingest_lag
        .iter()
        .map(|b| format!("{} epoch(s): {}", b.lag_epochs, b.decisions))
        .collect();
    println!(
        "ingest lag: {}",
        if lag.is_empty() {
            "none joined".to_owned()
        } else {
            lag.join(", ")
        }
    );
    println!(
        "pool: {} creations, {} evictions ({:.2}/1k decisions), {} rehydrations, hit rate {:.1}%",
        report.pool.creations,
        report.pool.evictions,
        report.pool.evictions_per_1k_decisions,
        report.pool.rehydrations,
        report.pool.hit_rate * 100.0
    );
    println!(
        "throughput: {:.0} decisions/s over {:.2} s",
        report.throughput.decisions_per_sec, report.throughput.wall_secs
    );
    if report.slo.pass {
        println!("SLO: pass");
    } else {
        for violation in &report.slo.violations {
            println!("SLO VIOLATION: {violation}");
        }
    }
}

// ────────────────────────────────────────────────────────────────────────
// Legacy subsystem modes (the absorbed `throughput` parts), re-based onto
// the shared arrival process so every subsystem sees the same skewed
// traffic shape.
// ────────────────────────────────────────────────────────────────────────

/// Producer threads submitting concurrently in every legacy configuration.
const PRODUCERS: usize = 8;
/// Distinct encoded context codes in the legacy synthetic stream.
const CODES: usize = 64;
/// Actions in the legacy synthetic stream.
const ACTIONS: usize = 10;
/// Crowd-blending threshold (the paper's default `l`).
const THRESHOLD: usize = 10;
/// Context dimension of the legacy ingest benchmark's central model.
const DIMENSION: usize = 16;

/// The arrival process all legacy modes draw traffic from: the same
/// Zipf-like 80/20 skew as the closed loop.
fn legacy_arrival(num_codes: usize, seed: u64) -> ArrivalProcess {
    ArrivalProcess::new(ArrivalConfig::new(1_000_000, num_codes as u64, seed))
        .expect("legacy arrival configurations are valid")
}

fn producer_stream(arrival: &ArrivalProcess, producer: usize, reports: usize) -> Vec<RawReport> {
    let base = (producer * reports) as u64;
    (0..reports as u64)
        .map(|i| {
            let index = base + i;
            let event = arrival.event(index);
            let action = bounded_draw(arrival.noise(index, LANE_LEGACY_ACTION), ACTIONS as u64);
            let reward =
                f64::from(bounded_draw(arrival.noise(index, LANE_LEGACY_REWARD), 2) as u32);
            RawReport::with_timestamp(
                format!("producer-{producer}"),
                i,
                EncodedReport::new(event.code as usize, action as usize, reward)
                    .expect("rewards 0/1 are valid"),
            )
        })
        .collect()
}

/// One measured configuration, serialized into `BENCH_ingest.json`.
#[derive(Debug, Serialize)]
struct BenchRecord {
    /// `"engine"` (part 1), `"ingest"` (part 2), `"update"` (part 3) or
    /// `"assemble"` (part 4).
    stage: String,
    /// `"sharded"` for the engine, `"sequential"`/`"coalesced"` for ingest,
    /// `"reference"`/`"scratch"` for the update path,
    /// `"from_scratch"`/`"incremental"` for epoch assembly.
    mode: String,
    shards: usize,
    /// Context dimension of the model under measurement.
    dimension: usize,
    /// Arms of the model under measurement.
    actions: usize,
    batch_size: usize,
    reports: usize,
    batches: usize,
    wall_secs: f64,
    reports_per_sec: f64,
    /// Speedup over the stage's baseline at the same shape.
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct BenchOutput {
    scale: String,
    hardware_threads: usize,
    /// Mean reports per distinct `(code, action)` pair in the ingest stream
    /// — the code-reuse factor the coalescer exploits.
    ingest_code_reuse: f64,
    /// Best scratch-path speedup over the reference model update path
    /// across shapes (the bar the CI smoke job enforces).
    best_update_speedup: f64,
    /// Best incremental-assembly speedup over the from-scratch rebuild
    /// under sparse single-arm flushes.
    best_assemble_speedup: f64,
    records: Vec<BenchRecord>,
}

/// One deterministic model digest, serialized into
/// `BENCH_ingest_summary.json`.
#[derive(Debug, Serialize)]
struct IngestDigestRecord {
    /// The measured configuration the digest came from.
    stage: String,
    mode: String,
    shards: usize,
    /// FNV-1a digest over the final model's exact statistics bits.
    digest: String,
}

/// The wall-clock-free companion of `BENCH_ingest.json`: pure model digests
/// that must be byte-identical across runs (and, within the coalesced
/// ingest stage, across shard counts). The CI smoke job diffs two of them.
#[derive(Debug, Serialize)]
struct IngestSummary {
    schema_version: u32,
    scale: String,
    reports: usize,
    batch_size: usize,
    codes: usize,
    records: Vec<IngestDigestRecord>,
}

/// FNV-1a over a little-endian `u64`.
fn fnv1a(hash: u64, word: u64) -> u64 {
    let mut hash = hash;
    for byte in word.to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// FNV-1a digest of a model's exact statistics: observation count, then
/// per arm the pull count and every design / reward-vector / theta
/// coefficient bit. Bit-identical models — and only those — collide.
fn model_digest(model: &LinUcb) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
    hash = fnv1a(hash, model.observations());
    for arm in 0..model.config().num_actions {
        let action = Action::new(arm);
        hash = fnv1a(hash, model.pulls(action).expect("arm index is in range"));
        for &x in model
            .design(action)
            .expect("arm index is in range")
            .as_slice()
        {
            hash = fnv1a(hash, x.to_bits());
        }
        for &x in model
            .reward_vector(action)
            .expect("arm index is in range")
            .iter()
        {
            hash = fnv1a(hash, x.to_bits());
        }
        for &x in model.theta(action).expect("arm index is in range").iter() {
            hash = fnv1a(hash, x.to_bits());
        }
    }
    hash
}

struct EngineRun {
    shards: usize,
    wall_secs: f64,
    reports_per_sec: f64,
    batches: usize,
    released: usize,
}

fn run_engine(shards: usize, streams: &[Vec<RawReport>], batch_size: usize) -> EngineRun {
    let engine = ShufflerEngine::builder(ShufflerConfig::new(THRESHOLD))
        .shards(shards)
        .batch_size(batch_size)
        .shard_queue_capacity(batch_size)
        .build()
        .expect("static configuration is valid");
    let total: usize = streams.iter().map(Vec::len).sum();

    let start = Instant::now();
    let handle = engine.spawn(42);
    std::thread::scope(|scope| {
        for stream in streams {
            let handle_ref = &handle;
            scope.spawn(move || {
                for report in stream.iter().cloned() {
                    handle_ref
                        .submit(report)
                        .expect("engine stays open during the run");
                }
            });
        }
    });
    let output = handle.finish();
    let wall_secs = start.elapsed().as_secs_f64();

    let received: usize = output
        .batches
        .iter()
        .map(|b| b.batch.stats().received)
        .sum();
    assert_eq!(received, total, "the engine must conserve every report");
    EngineRun {
        shards,
        wall_secs,
        reports_per_sec: total as f64 / wall_secs,
        batches: output.batches.len(),
        released: output
            .batches
            .iter()
            .map(|b| b.batch.stats().released)
            .sum(),
    }
}

/// Fits the k-means encoder the ingest benchmark's server validates against.
fn fit_encoder() -> Arc<dyn Encoder> {
    fit_serve_encoder(CODES as u64, DIMENSION)
}

/// Builds the shuffled batches every ingest configuration replays: heavy
/// `(code, action)` reuse, exactly like post-threshold production batches.
fn ingest_batches(num_codes: usize, batch_size: usize, batches: usize) -> Vec<ShuffledBatch> {
    let shuffler = Shuffler::new(ShufflerConfig::new(1)).expect("threshold 1 is valid");
    let arrival = legacy_arrival(num_codes, 99);
    let mut rng = StdRng::seed_from_u64(99);
    (0..batches)
        .map(|b| {
            let base = (b * batch_size) as u64;
            let raw: Vec<RawReport> = (0..batch_size as u64)
                .map(|i| {
                    let index = base + i;
                    let event = arrival.event(index);
                    let action =
                        bounded_draw(arrival.noise(index, LANE_LEGACY_ACTION), ACTIONS as u64);
                    let reward =
                        f64::from(bounded_draw(arrival.noise(index, LANE_LEGACY_REWARD), 2) as u32);
                    RawReport::with_timestamp(
                        format!("b{b}"),
                        i,
                        EncodedReport::new(event.code as usize, action as usize, reward)
                            .expect("rewards 0/1 are valid"),
                    )
                })
                .collect();
            shuffler.process(raw, &mut rng)
        })
        .collect()
}

enum IngestMode {
    Sequential,
    Coalesced { ingest_shards: usize },
}

fn run_ingest(
    mode: &IngestMode,
    encoder: &Arc<dyn Encoder>,
    batches: &[ShuffledBatch],
) -> (f64, u64) {
    let shards = match mode {
        IngestMode::Sequential => 1,
        IngestMode::Coalesced { ingest_shards } => *ingest_shards,
    };
    let config = P2bConfig::new(DIMENSION, ACTIONS).with_ingest_shards(shards);
    let mut server =
        CentralServer::new(&config, Arc::clone(encoder)).expect("static configuration is valid");
    let start = Instant::now();
    let mut accepted = 0u64;
    for batch in batches {
        accepted += match mode {
            IngestMode::Sequential => server.ingest_batch(batch),
            IngestMode::Coalesced { .. } => server.ingest_batch_coalesced(batch),
        }
        .expect("well-formed batches ingest cleanly");
    }
    // Synchronize with the ingest shards: assembling the model waits for
    // every dispatched update to be folded, so the timing covers the work.
    let model = server.model().expect("assembly succeeds");
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(model.observations(), accepted, "no update may be lost");
    (wall, model_digest(model))
}

/// Deterministic coalesced-update batches at one model shape for the
/// model-level update benchmark (part 3): L1-normalized contexts, counts in
/// 1..10, reward sums within `[0, count]`.
fn update_batches(
    dimension: usize,
    actions: usize,
    batch_len: usize,
    batches: usize,
    seed: u64,
) -> Vec<Vec<CoalescedUpdate>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..batches)
        .map(|_| {
            (0..batch_len)
                .map(|_| {
                    let raw: Vec<f64> =
                        (0..dimension).map(|_| rng.gen_range(0.0f64..1.0)).collect();
                    let context = Vector::from(raw).normalized_l1().expect("non-empty");
                    let count = rng.gen_range(1u64..10);
                    let reward_sum = rng.gen_range(0.0..=count as f64);
                    CoalescedUpdate::new(
                        context,
                        Action::new(rng.gen_range(0..actions)),
                        count,
                        reward_sum,
                    )
                    .expect("generated updates are well-formed")
                })
                .collect()
        })
        .collect()
}

/// Times one full replay of `batches` through a fresh model on the chosen
/// update path; returns the wall time and the final model's digest (the
/// correctness sink — both paths must land on the same digest).
fn time_update_path(
    dimension: usize,
    actions: usize,
    batches: &[Vec<CoalescedUpdate>],
    scratch: Option<&mut IngestScratch>,
) -> (f64, u64) {
    let mut model =
        LinUcb::new(LinUcbConfig::new(dimension, actions)).expect("static shapes are valid");
    let start = Instant::now();
    match scratch {
        None => {
            for batch in batches {
                model.update_batch(batch).expect("updates are well-formed");
            }
        }
        Some(scratch) => {
            for batch in batches {
                model
                    .update_batch_with(batch, scratch)
                    .expect("updates are well-formed");
            }
        }
    }
    let wall = start.elapsed().as_secs_f64();
    (wall, model_digest(&model))
}

/// Times `epochs` sparse flush cycles against a [`ModelService`]: each
/// epoch folds one single-report update into one arm and re-assembles the
/// served model, either from scratch (the preserved reference) or
/// incrementally over the dirty-arm union. Returns the wall time and the
/// final model's digest.
fn time_assemble_path(
    dimension: usize,
    actions: usize,
    shards: usize,
    epochs: usize,
    incremental: bool,
) -> (f64, u64) {
    let mut service = ModelService::spawn(LinUcbConfig::new(dimension, actions), shards)
        .expect("static shapes are valid");
    let mut rng = StdRng::seed_from_u64(71);
    let sparse_update = |arm: usize, rng: &mut StdRng| {
        let raw: Vec<f64> = (0..dimension).map(|_| rng.gen_range(0.0f64..1.0)).collect();
        let context = Vector::from(raw).normalized_l1().expect("non-empty");
        CoalescedUpdate::new(context, Action::new(arm), 1, 1.0)
            .expect("generated updates are well-formed")
    };
    // Warm every arm and take the first (full-rebuild) assembly outside the
    // timed region, so the measurement isolates the steady sparse-flush
    // regime.
    let warm: Vec<CoalescedUpdate> = (0..actions)
        .map(|arm| sparse_update(arm, &mut rng))
        .collect();
    service.ingest(warm).expect("service threads are healthy");
    let mut model = service.assemble_with_dirty().expect("assembly succeeds").0;
    let start = Instant::now();
    for epoch in 0..epochs {
        let update = sparse_update(epoch % actions, &mut rng);
        service
            .ingest(vec![update])
            .expect("service threads are healthy");
        model = if incremental {
            service.assemble_with_dirty().expect("assembly succeeds").0
        } else {
            service.assemble_reference().expect("assembly succeeds")
        };
    }
    let wall = start.elapsed().as_secs_f64();
    (wall, model_digest(&model))
}

/// The ingest-side benchmark suite: shuffler-engine shard scaling,
/// sequential vs coalesced central-model ingest, the model update path,
/// epoch assembly, and the secure-aggregation share pipeline, written to
/// `BENCH_ingest.json` / `BENCH_ingest_summary.json`.
///
/// # Errors
///
/// Returns [`BenchFailure::InvariantViolation`] when a determinism digest
/// diverges across shard counts or code paths,
/// [`BenchFailure::SloViolation`] when the update fast path regresses below
/// its speedup floor, [`BenchFailure::Runtime`] when a pipeline under
/// measurement fails outright, and [`BenchFailure::Io`] when an artifact
/// cannot be written — each mapped to a distinct exit code by the
/// `p2b-serve` binary.
pub fn run_ingest_mode(scale: Scale) -> Result<(), BenchFailure> {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut records = Vec::new();

    // ── Part 1: shuffler-engine shard scaling ────────────────────────────
    let per_producer = scale.pick(5_000, 50_000, 250_000);
    let batch_size = scale.pick(1_024, 4_096, 8_192);
    let total = per_producer * PRODUCERS;

    println!("Sharded shuffler engine throughput");
    println!(
        "{total} reports, {PRODUCERS} producers, batch size {batch_size}, \
         threshold {THRESHOLD}, {cores} hardware threads"
    );
    if cores < 4 {
        println!("warning: fewer than 4 hardware threads; shard scaling will not show here");
    }

    let arrival = legacy_arrival(CODES, 1);
    let streams: Vec<Vec<RawReport>> = (0..PRODUCERS)
        .map(|p| producer_stream(&arrival, p, per_producer))
        .collect();

    // Warm-up pass so allocator and page-cache effects do not favor the
    // later (multi-shard) runs.
    let _ = run_engine(1, &streams, batch_size);

    println!(
        "\n{:>7} {:>10} {:>14} {:>9} {:>10} {:>9}",
        "shards", "wall (ms)", "reports/s", "batches", "released", "speedup"
    );
    let mut baseline = None;
    for shards in [1usize, 2, 4, 8] {
        let result = run_engine(shards, &streams, batch_size);
        let baseline_rate = *baseline.get_or_insert(result.reports_per_sec);
        let speedup = result.reports_per_sec / baseline_rate;
        println!(
            "{:>7} {:>10.1} {:>14.0} {:>9} {:>10} {:>8.2}x",
            result.shards,
            result.wall_secs * 1e3,
            result.reports_per_sec,
            result.batches,
            result.released,
            speedup
        );
        records.push(BenchRecord {
            stage: "engine".to_owned(),
            mode: "sharded".to_owned(),
            shards: result.shards,
            dimension: DIMENSION,
            actions: ACTIONS,
            batch_size,
            reports: total,
            batches: result.batches,
            wall_secs: result.wall_secs,
            reports_per_sec: result.reports_per_sec,
            speedup,
        });
    }

    // ── Part 2: central-model ingest scaling ─────────────────────────────
    // Pair space sized for ≥ 10× reuse per batch — the post-threshold regime
    // (every released code appears ≥ l = 10 times by construction).
    let ingest_batch_size = scale.pick(512, 2_048, 8_192);
    let ingest_batch_count = scale.pick(8, 16, 32);
    let ingest_codes = scale.pick(4, 16, CODES);
    let ingest_total = ingest_batch_size * ingest_batch_count;
    let reuse = ingest_batch_size as f64 / (ingest_codes * ACTIONS) as f64;
    println!("\nCentral-model ingestion: sequential vs coalesced sufficient statistics");
    println!(
        "{ingest_total} reports in {ingest_batch_count} batches of {ingest_batch_size}, \
         {ingest_codes} codes x {ACTIONS} actions (~{reuse:.0}x reuse per batch), d = {DIMENSION}"
    );

    let encoder = fit_encoder();
    let batches = ingest_batches(ingest_codes, ingest_batch_size, ingest_batch_count);
    // Warm-up.
    let _ = run_ingest(
        &IngestMode::Sequential,
        &encoder,
        &batches[..1.min(batches.len())],
    );

    let modes: [(&str, IngestMode); 4] = [
        ("sequential", IngestMode::Sequential),
        ("coalesced", IngestMode::Coalesced { ingest_shards: 1 }),
        ("coalesced", IngestMode::Coalesced { ingest_shards: 2 }),
        ("coalesced", IngestMode::Coalesced { ingest_shards: 4 }),
    ];
    println!(
        "\n{:>12} {:>7} {:>10} {:>14} {:>9}",
        "mode", "shards", "wall (ms)", "reports/s", "speedup"
    );
    let mut ingest_baseline = None;
    let mut digest_records = Vec::new();
    let mut coalesced_digest: Option<u64> = None;
    for (name, mode) in &modes {
        let (wall_secs, digest) = run_ingest(mode, &encoder, &batches);
        let rate = ingest_total as f64 / wall_secs;
        let baseline_rate = *ingest_baseline.get_or_insert(rate);
        let speedup = rate / baseline_rate;
        let shards = match mode {
            IngestMode::Sequential => 1,
            IngestMode::Coalesced { ingest_shards } => *ingest_shards,
        };
        if let IngestMode::Coalesced { .. } = mode {
            // Shard-count invariance: the dirty-arm merge is deterministic,
            // so every coalesced shard count must land on the same model.
            let expected = *coalesced_digest.get_or_insert(digest);
            if digest != expected {
                return Err(BenchFailure::InvariantViolation(format!(
                    "coalesced ingest diverged across shard counts \
                     (shards = {shards}: {digest:016x} != {expected:016x})"
                )));
            }
        }
        digest_records.push(IngestDigestRecord {
            stage: "ingest".to_owned(),
            mode: (*name).to_owned(),
            shards,
            digest: format!("{digest:016x}"),
        });
        println!(
            "{:>12} {:>7} {:>10.1} {:>14.0} {:>8.2}x",
            name,
            shards,
            wall_secs * 1e3,
            rate,
            speedup
        );
        records.push(BenchRecord {
            stage: "ingest".to_owned(),
            mode: (*name).to_owned(),
            shards,
            dimension: DIMENSION,
            actions: ACTIONS,
            batch_size: ingest_batch_size,
            reports: ingest_total,
            batches: ingest_batch_count,
            wall_secs,
            reports_per_sec: rate,
            speedup,
        });
    }

    let coalesced_best = records
        .iter()
        .filter(|r| r.stage == "ingest" && r.mode == "coalesced")
        .map(|r| r.speedup)
        .fold(0.0f64, f64::max);
    println!(
        "\nbest coalesced ingest speedup over sequential per-report ingestion: \
         {coalesced_best:.2}x"
    );

    // ── Part 3: model-level update path (reference vs arena scratch) ─────
    // The wide shape is where the deferred per-arm arena sync pays: at 32
    // arms the scatter stride makes the per-fold sync dominate the rank-1
    // fold itself. The native 10-arm shape is recorded for honesty — the
    // win there is real but smaller, because sync is cheaper at stride 10.
    let update_batch_len = scale.pick(256, 512, 1_024);
    let update_batch_count = scale.pick(64, 96, 128);
    let update_shapes: [(usize, usize); 2] = [(DIMENSION, 32), (DIMENSION, ACTIONS)];
    println!("\nModel update path: per-update arena sync vs batch-deferred scratch sync");
    println!(
        "{update_batch_count} coalesced batches of {update_batch_len} rank-k updates \
         per shape, d = {DIMENSION}"
    );
    println!(
        "\n{:>10} {:>5} {:>8} {:>10} {:>14} {:>9}",
        "path", "d", "actions", "wall (ms)", "updates/s", "speedup"
    );
    let mut best_update = 0.0f64;
    for (dimension, actions) in update_shapes {
        let batches = update_batches(
            dimension,
            actions,
            update_batch_len,
            update_batch_count,
            (dimension * 1_009 + actions) as u64,
        );
        let warmup = &batches[..(update_batch_count / 8).max(1)];
        let mut scratch = IngestScratch::new();
        // Warm both paths so allocator and branch-predictor effects do not
        // favor the later configuration.
        let _ = time_update_path(dimension, actions, warmup, None);
        let _ = time_update_path(dimension, actions, warmup, Some(&mut scratch));
        let (ref_wall, ref_digest) = time_update_path(dimension, actions, &batches, None);
        let (scratch_wall, scratch_digest) =
            time_update_path(dimension, actions, &batches, Some(&mut scratch));
        // The scratch path defers the arena sync but must land on the exact
        // model bits of the reference path.
        if ref_digest != scratch_digest {
            return Err(BenchFailure::InvariantViolation(format!(
                "scratch update path diverged from the reference \
                 (d={dimension}, a={actions}: {scratch_digest:016x} != {ref_digest:016x})"
            )));
        }
        let updates = update_batch_len * update_batch_count;
        for (path, wall) in [("reference", ref_wall), ("scratch", scratch_wall)] {
            let speedup = ref_wall / wall;
            println!(
                "{:>10} {:>5} {:>8} {:>10.1} {:>14.0} {:>8.2}x",
                path,
                dimension,
                actions,
                wall * 1e3,
                updates as f64 / wall,
                speedup
            );
            if path == "scratch" {
                best_update = best_update.max(speedup);
            }
            records.push(BenchRecord {
                stage: "update".to_owned(),
                mode: path.to_owned(),
                shards: 1,
                dimension,
                actions,
                batch_size: update_batch_len,
                reports: updates,
                batches: update_batch_count,
                wall_secs: wall,
                reports_per_sec: updates as f64 / wall,
                speedup,
            });
        }
        digest_records.push(IngestDigestRecord {
            stage: "update".to_owned(),
            mode: format!("d{dimension}a{actions}"),
            shards: 1,
            digest: format!("{ref_digest:016x}"),
        });
    }
    println!(
        "\nbest scratch update speedup over the per-update reference path: \
         {best_update:.2}x"
    );
    // The speedup bar CI's smoke job enforces. Deferring the theta solve
    // and the strided arena scatter to once per touched arm per batch
    // clears this with margin at the wide shape on any hardware.
    if best_update < 2.0 {
        return Err(BenchFailure::SloViolation(format!(
            "update fast path regressed below the 2x floor over the reference \
             path (best {best_update:.2}x)"
        )));
    }

    // ── Part 4: epoch assembly (from-scratch rebuild vs dirty-arm merge) ─
    let assemble_epochs = scale.pick(512, 2_048, 8_192);
    let assemble_actions = 32usize;
    println!("\nEpoch assembly under sparse flushes: full rebuild vs dirty-arm re-merge");
    println!(
        "{assemble_epochs} single-arm flush epochs, d = {DIMENSION}, \
         {assemble_actions} actions"
    );
    println!(
        "\n{:>12} {:>7} {:>10} {:>14} {:>9}",
        "path", "shards", "wall (ms)", "epochs/s", "speedup"
    );
    let mut best_assemble = 0.0f64;
    for shards in [1usize, 4] {
        // Warm-up at a fraction of the epoch count.
        let _ = time_assemble_path(
            DIMENSION,
            assemble_actions,
            shards,
            (assemble_epochs / 8).max(1),
            false,
        );
        let (ref_wall, ref_digest) =
            time_assemble_path(DIMENSION, assemble_actions, shards, assemble_epochs, false);
        let (inc_wall, inc_digest) =
            time_assemble_path(DIMENSION, assemble_actions, shards, assemble_epochs, true);
        // Incremental assembly must serve the exact bits of the rebuild.
        if ref_digest != inc_digest {
            return Err(BenchFailure::InvariantViolation(format!(
                "incremental assembly diverged from the from-scratch rebuild \
                 (shards = {shards}: {inc_digest:016x} != {ref_digest:016x})"
            )));
        }
        for (path, wall) in [("from_scratch", ref_wall), ("incremental", inc_wall)] {
            let speedup = ref_wall / wall;
            println!(
                "{:>12} {:>7} {:>10.1} {:>14.0} {:>8.2}x",
                path,
                shards,
                wall * 1e3,
                assemble_epochs as f64 / wall,
                speedup
            );
            if path == "incremental" {
                best_assemble = best_assemble.max(speedup);
            }
            records.push(BenchRecord {
                stage: "assemble".to_owned(),
                mode: path.to_owned(),
                shards,
                dimension: DIMENSION,
                actions: assemble_actions,
                batch_size: 1,
                reports: assemble_epochs,
                batches: assemble_epochs,
                wall_secs: wall,
                reports_per_sec: assemble_epochs as f64 / wall,
                speedup,
            });
        }
        digest_records.push(IngestDigestRecord {
            stage: "assemble".to_owned(),
            mode: "sparse_flush".to_owned(),
            shards,
            digest: format!("{ref_digest:016x}"),
        });
    }
    println!(
        "\nbest incremental assembly speedup over the from-scratch rebuild: \
         {best_assemble:.2}x"
    );

    // ── Part 5: secure-aggregation ingest (split → shard-fold → recombine) ─
    // The same coalesced traffic replayed through the fixed-point additive
    // share pipeline at k ∈ {1, 2, 4} aggregator shards. Shares over the
    // wrapping-i128 group recombine exactly, so the cumulative-sum digest
    // and the republished model must be bit-identical at every shard count
    // — even though each run here gets a *different* mask seed.
    let secure_batch_len = scale.pick(128, 512, 2_048);
    let secure_batch_count = scale.pick(8, 16, 32);
    let secure_batches = update_batches(
        DIMENSION,
        ACTIONS,
        secure_batch_len,
        secure_batch_count,
        0xB10C_5EED,
    );
    let secure_reports = secure_batch_len * secure_batch_count;
    println!("\nSecure-aggregation ingest: additive share split/recombine per shard count");
    println!(
        "{secure_reports} coalesced contributions in {secure_batch_count} flush epochs \
         of {secure_batch_len}, d = {DIMENSION}, {ACTIONS} actions"
    );
    println!(
        "\n{:>7} {:>10} {:>14} {:>9} {:>18}",
        "shards", "wall (ms)", "reports/s", "speedup", "digest"
    );
    let secure_config = LinUcbConfig::new(DIMENSION, ACTIONS);
    let mut secure_baseline = None;
    let mut secure_expected: Option<(u64, u64)> = None;
    for shards in [1usize, 2, 4] {
        // The mask seed deliberately varies with the shard count: recombined
        // sums are group elements, never a function of seed or shard count.
        let seed = 0x5EC0_A660_0000_0000 ^ shards as u64;
        let secure_err =
            |e: p2b_core::CoreError| BenchFailure::Runtime(format!("secure-agg ingest: {e}"));
        // Warm-up on a throwaway service so spawn/allocator effects do not
        // favor the later shard counts.
        {
            let mut warm =
                SecureIngestService::new(secure_config, shards, seed ^ 0xFF).map_err(secure_err)?;
            warm.ingest_batch(&secure_batches[0]).map_err(secure_err)?;
            let _ = warm.assemble().map_err(secure_err)?;
        }
        let mut service =
            SecureIngestService::new(secure_config, shards, seed).map_err(secure_err)?;
        let start = Instant::now();
        let mut model = None;
        for batch in &secure_batches {
            service.ingest_batch(batch).map_err(secure_err)?;
            // Assemble per batch: each flush closes a share epoch and
            // republishes from the recombined cumulative sums.
            model = Some(service.assemble().map_err(secure_err)?);
        }
        let wall_secs = start.elapsed().as_secs_f64();
        let digest = service.digest();
        let model = model.ok_or_else(|| {
            BenchFailure::Runtime("secure-agg ingest produced no model".to_owned())
        })?;
        let published = model_digest(&model);
        let (expected_totals, expected_model) = *secure_expected.get_or_insert((digest, published));
        if digest != expected_totals || published != expected_model {
            return Err(BenchFailure::InvariantViolation(format!(
                "secure-agg recombination diverged across shard counts (shards = {shards}: \
                 totals {digest:016x} != {expected_totals:016x}, \
                 model {published:016x} != {expected_model:016x})"
            )));
        }
        let rate = secure_reports as f64 / wall_secs;
        let baseline_rate = *secure_baseline.get_or_insert(rate);
        let speedup = rate / baseline_rate;
        println!(
            "{:>7} {:>10.1} {:>14.0} {:>8.2}x {:>18}",
            shards,
            wall_secs * 1e3,
            rate,
            speedup,
            format!("{digest:016x}")
        );
        records.push(BenchRecord {
            stage: "secure_agg".to_owned(),
            mode: "recombined".to_owned(),
            shards,
            dimension: DIMENSION,
            actions: ACTIONS,
            batch_size: secure_batch_len,
            reports: secure_reports,
            batches: secure_batch_count,
            wall_secs,
            reports_per_sec: rate,
            speedup,
        });
        digest_records.push(IngestDigestRecord {
            stage: "secure_agg".to_owned(),
            mode: "recombined".to_owned(),
            shards,
            digest: format!("{digest:016x}"),
        });
    }
    println!("\nsecure-agg recombined digests identical across shard counts {{1, 2, 4}}");

    let output = BenchOutput {
        scale: format!("{scale:?}").to_lowercase(),
        hardware_threads: cores,
        ingest_code_reuse: reuse,
        best_update_speedup: best_update,
        best_assemble_speedup: best_assemble,
        records,
    };
    let json = serde_json::to_string_pretty(&output).expect("records serialize");
    std::fs::write("BENCH_ingest.json", json)
        .map_err(|e| BenchFailure::Io(format!("BENCH_ingest.json: {e}")))?;
    println!("machine-readable results written to BENCH_ingest.json");

    let summary = IngestSummary {
        schema_version: 1,
        scale: format!("{scale:?}").to_lowercase(),
        reports: ingest_total,
        batch_size: ingest_batch_size,
        codes: ingest_codes,
        records: digest_records,
    };
    let json = serde_json::to_string_pretty(&summary).expect("records serialize");
    std::fs::write("BENCH_ingest_summary.json", json)
        .map_err(|e| BenchFailure::Io(format!("BENCH_ingest_summary.json: {e}")))?;
    println!("deterministic model digests written to BENCH_ingest_summary.json");
    Ok(())
}

/// One measured pool configuration, serialized into `BENCH_pool.json`.
#[derive(Debug, Serialize)]
struct PoolBenchRecord {
    /// `"bounded"` or `"unbounded"`.
    mode: String,
    /// Residency budget (0 = unbounded).
    budget: usize,
    shards: usize,
    ops: usize,
    wall_secs: f64,
    ops_per_sec: f64,
    evictions: u64,
    rehydrations: u64,
    hit_rate: f64,
    max_resident: usize,
    /// Peak approximate bytes of model state owned by resident agents.
    peak_resident_model_bytes: usize,
    /// Speedup over the unbounded single-shard baseline.
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct PoolBenchOutput {
    scale: String,
    hardware_threads: usize,
    codes: usize,
    hot_fraction: f64,
    records: Vec<PoolBenchRecord>,
}

fn pool_system() -> P2bSystem {
    let config = P2bConfig::new(DIMENSION, ACTIONS).with_local_interactions(4);
    P2bSystem::new(config, fit_encoder()).expect("static configuration is valid")
}

struct PoolRun {
    wall_secs: f64,
    evictions: u64,
    rehydrations: u64,
    hit_rate: f64,
    max_resident: usize,
    peak_bytes: usize,
}

/// Drives one pool configuration over the key stream: every operation is a
/// checkout + selection + local reward fold + checkin; reports funneled
/// through the pool are drained (and dropped) every 1024 operations, like a
/// serving loop handing them to the shuffler engine.
fn run_pool(budget: Option<usize>, shards: usize, keys: &[u64]) -> PoolRun {
    let mut system = pool_system();
    let mut pool = AgentPool::new(AgentPoolConfig {
        max_resident_agents: budget,
        shards,
    })
    .expect("static configuration is valid");
    let mut rng = StdRng::seed_from_u64(23);
    let context = Vector::filled(DIMENSION, 1.0 / DIMENSION as f64);
    let mut max_resident = 0usize;
    let mut peak_bytes = 0usize;
    let start = Instant::now();
    for (i, &key) in keys.iter().enumerate() {
        pool.with_agent(&mut system, key, |agent| {
            let action = agent.select_action(&context, &mut rng)?;
            agent.observe_reward(&context, action, 1.0, &mut rng)
        })
        .expect("pool operations succeed");
        if i % 1024 == 0 {
            max_resident = max_resident.max(pool.resident_agents());
            peak_bytes = peak_bytes.max(pool.approx_model_bytes().0);
            let _ = pool.drain_reports();
        }
    }
    max_resident = max_resident.max(pool.resident_agents());
    peak_bytes = peak_bytes.max(pool.approx_model_bytes().0);
    let wall_secs = start.elapsed().as_secs_f64();
    if let Some(budget) = budget {
        assert!(
            max_resident <= budget,
            "memory ceiling violated: {max_resident} resident > budget {budget}"
        );
    }
    let stats = pool.stats();
    PoolRun {
        wall_secs,
        evictions: stats.evictions,
        rehydrations: stats.rehydrations,
        hit_rate: stats.hits as f64 / (stats.hits + stats.misses()).max(1) as f64,
        max_resident,
        peak_bytes,
    }
}

/// Legacy part 3: bounded agent-pool serving over the shared skewed arrival
/// stream, written to `BENCH_pool.json`.
pub fn run_pool_mode(scale: Scale) {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let ops = scale.pick(20_000, 100_000, 400_000);
    let arrival = legacy_arrival(CODES, 17);
    let keys: Vec<u64> = arrival
        .events(0, ops as u64)
        .iter()
        .map(|e| e.code)
        .collect();
    println!("\nBounded-memory agent pool: checkout/interact/checkin throughput");
    println!(
        "{ops} operations over {CODES} context codes (80% of traffic on 20% of codes), \
         d = {DIMENSION}, {ACTIONS} actions"
    );
    println!(
        "\n{:>10} {:>7} {:>7} {:>10} {:>12} {:>9} {:>8} {:>9} {:>12} {:>8}",
        "mode",
        "budget",
        "shards",
        "wall (ms)",
        "ops/s",
        "evict",
        "rehydr",
        "hit rate",
        "peak bytes",
        "speedup"
    );
    let mut records = Vec::new();
    let mut baseline = None;
    let configurations: [(Option<usize>, usize); 7] = [
        (None, 1),
        (None, 4),
        (Some(CODES / 2), 1),
        (Some(CODES / 8), 1),
        (Some(CODES / 8), 2),
        (Some(CODES / 8), 4),
        (Some(4), 1),
    ];
    for (budget, shards) in configurations {
        let run = run_pool(budget, shards, &keys);
        let rate = ops as f64 / run.wall_secs;
        let baseline_rate = *baseline.get_or_insert(rate);
        let speedup = rate / baseline_rate;
        let mode = if budget.is_some() {
            "bounded"
        } else {
            "unbounded"
        };
        println!(
            "{:>10} {:>7} {:>7} {:>10.1} {:>12.0} {:>9} {:>8} {:>8.1}% {:>12} {:>7.2}x",
            mode,
            budget.unwrap_or(0),
            shards,
            run.wall_secs * 1e3,
            rate,
            run.evictions,
            run.rehydrations,
            run.hit_rate * 100.0,
            run.peak_bytes,
            speedup
        );
        records.push(PoolBenchRecord {
            mode: mode.to_owned(),
            budget: budget.unwrap_or(0),
            shards,
            ops,
            wall_secs: run.wall_secs,
            ops_per_sec: rate,
            evictions: run.evictions,
            rehydrations: run.rehydrations,
            hit_rate: run.hit_rate,
            max_resident: run.max_resident,
            peak_resident_model_bytes: run.peak_bytes,
            speedup,
        });
    }
    let output = PoolBenchOutput {
        scale: format!("{scale:?}").to_lowercase(),
        hardware_threads: cores,
        codes: CODES,
        hot_fraction: 0.2,
        records,
    };
    let json = serde_json::to_string_pretty(&output).expect("records serialize");
    std::fs::write("BENCH_pool.json", json).expect("benchmark artifact is writable");
    println!("machine-readable results written to BENCH_pool.json");
}

/// One measured scoring path at one model shape, serialized into
/// `BENCH_select.json`.
#[derive(Debug, Serialize)]
struct SelectBenchRecord {
    /// `"reference"`, `"arena_f64"` or `"arena_f32"`.
    path: String,
    dimension: usize,
    actions: usize,
    selects: usize,
    wall_secs: f64,
    ns_per_select: f64,
    /// Speedup over the scalar reference path at the same shape.
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct SelectBenchOutput {
    scale: String,
    hardware_threads: usize,
    /// Best arena-f64 speedup over the scalar reference across shapes.
    best_speedup_f64: f64,
    /// Best f32-tier speedup over the scalar reference across shapes.
    best_speedup_f32: f64,
    records: Vec<SelectBenchRecord>,
}

fn select_context(dimension: usize, rng: &mut StdRng) -> Vector {
    let raw: Vec<f64> = (0..dimension).map(|_| rng.gen_range(0.0f64..1.0)).collect();
    Vector::from(raw).normalized_l1().expect("non-empty")
}

/// Pre-trains a model so every path scores non-trivial statistics.
fn select_model(dimension: usize, actions: usize, rounds: usize) -> LinUcb {
    let mut rng = StdRng::seed_from_u64(dimension as u64 * 31 + actions as u64);
    let mut policy = LinUcb::new(LinUcbConfig::new(dimension, actions)).expect("shape is valid");
    for _ in 0..rounds {
        let ctx = select_context(dimension, &mut rng);
        let action = policy
            .select_action(&ctx, &mut rng)
            .expect("context is well-formed");
        policy
            .update(&ctx, action, f64::from(rng.gen_range(0..2u8)))
            .expect("context is well-formed");
    }
    policy
}

/// Times `selects` single decisions over a cycled context set; returns the
/// wall time and the sum of chosen action indices (the correctness sink —
/// paths that must agree bit-for-bit must produce the same sum).
fn time_selects<F>(contexts: &[Vector], selects: usize, mut select_one: F) -> (f64, u64)
where
    F: FnMut(&Vector) -> usize,
{
    let mut sink = 0u64;
    let start = Instant::now();
    for i in 0..selects {
        let ctx = std::hint::black_box(&contexts[i % contexts.len()]);
        sink = sink.wrapping_add(select_one(ctx) as u64);
    }
    (start.elapsed().as_secs_f64(), std::hint::black_box(sink))
}

/// Legacy part 4: single-decision LinUCB select throughput across the three
/// scoring paths, written to `BENCH_select.json`.
pub fn run_select_mode(scale: Scale) {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let shapes: [(usize, usize); 3] = [(10, 10), (16, 50), (32, 100)];
    let rounds = scale.pick(200, 500, 1_000);
    let selects = scale.pick(5_000, 50_000, 200_000);
    let distinct_contexts = 64usize;

    println!("\nSingle-decision LinUCB select throughput: scalar reference vs flat arena");
    println!(
        "{selects} selects per path over {distinct_contexts} contexts, \
         models pre-trained for {rounds} rounds"
    );
    println!(
        "\n{:>10} {:>5} {:>8} {:>10} {:>12} {:>12} {:>9}",
        "path", "d", "actions", "wall (ms)", "ns/select", "selects/s", "speedup"
    );

    let mut records = Vec::new();
    let mut best_f64 = 0.0f64;
    let mut best_f32 = 0.0f64;
    for (dimension, actions) in shapes {
        let policy = select_model(dimension, actions, rounds);
        let scorer = F32Scorer::new(&policy);
        let mut ctx_rng = StdRng::seed_from_u64(13);
        let contexts: Vec<Vector> = (0..distinct_contexts)
            .map(|_| select_context(dimension, &mut ctx_rng))
            .collect();
        // Warm-up pass per path so page-cache/branch-predictor effects do
        // not favor the later configurations.
        let warmup = (selects / 10).max(1);

        let mut rng = StdRng::seed_from_u64(5);
        let _ = time_selects(&contexts, warmup, |ctx| {
            policy
                .select_action_reference(ctx, &mut rng)
                .expect("context is well-formed")
                .index()
        });
        let mut rng = StdRng::seed_from_u64(5);
        let (ref_wall, ref_sink) = time_selects(&contexts, selects, |ctx| {
            policy
                .select_action_reference(ctx, &mut rng)
                .expect("context is well-formed")
                .index()
        });

        let mut scratch = SelectScratch::new();
        let mut rng = StdRng::seed_from_u64(5);
        let _ = time_selects(&contexts, warmup, |ctx| {
            policy
                .select_action_with(ctx, &mut rng, &mut scratch)
                .expect("context is well-formed")
                .index()
        });
        let mut rng = StdRng::seed_from_u64(5);
        let (f64_wall, f64_sink) = time_selects(&contexts, selects, |ctx| {
            policy
                .select_action_with(ctx, &mut rng, &mut scratch)
                .expect("context is well-formed")
                .index()
        });
        // The arena path is bit-identical to the reference: same seeds must
        // give the same action stream.
        assert_eq!(
            ref_sink, f64_sink,
            "arena f64 path diverged from the scalar reference (d={dimension}, a={actions})"
        );

        let mut scratch32 = SelectScratchF32::new();
        let mut rng = StdRng::seed_from_u64(5);
        let _ = time_selects(&contexts, warmup, |ctx| {
            scorer
                .select_action_with(ctx, &mut rng, &mut scratch32)
                .expect("context is well-formed")
                .index()
        });
        let mut rng = StdRng::seed_from_u64(5);
        let (f32_wall, _) = time_selects(&contexts, selects, |ctx| {
            scorer
                .select_action_with(ctx, &mut rng, &mut scratch32)
                .expect("context is well-formed")
                .index()
        });

        for (path, wall) in [
            ("reference", ref_wall),
            ("arena_f64", f64_wall),
            ("arena_f32", f32_wall),
        ] {
            let speedup = ref_wall / wall;
            println!(
                "{:>10} {:>5} {:>8} {:>10.1} {:>12.1} {:>12.0} {:>8.2}x",
                path,
                dimension,
                actions,
                wall * 1e3,
                wall * 1e9 / selects as f64,
                selects as f64 / wall,
                speedup
            );
            match path {
                "arena_f64" => best_f64 = best_f64.max(speedup),
                "arena_f32" => best_f32 = best_f32.max(speedup),
                _ => {}
            }
            records.push(SelectBenchRecord {
                path: path.to_owned(),
                dimension,
                actions,
                selects,
                wall_secs: wall,
                ns_per_select: wall * 1e9 / selects as f64,
                speedup,
            });
        }
    }

    println!(
        "\nbest select speedup over the scalar reference: \
         {best_f64:.2}x (f64 arena), {best_f32:.2}x (f32 tier)"
    );
    // The speedup bar CI's smoke job enforces. The arena removes the
    // per-arm allocations and the redundant θ solve, so even the quick
    // scale clears this with a wide margin on any hardware; the acceptance
    // target (≥ 5× at the wide shapes) is recorded in the JSON artifact.
    assert!(
        best_f64.max(best_f32) >= 2.0,
        "select fast path regressed below the 2x floor over the scalar reference"
    );

    let output = SelectBenchOutput {
        scale: format!("{scale:?}").to_lowercase(),
        hardware_threads: cores,
        best_speedup_f64: best_f64,
        best_speedup_f32: best_f32,
        records,
    };
    let json = serde_json::to_string_pretty(&output).expect("records serialize");
    std::fs::write("BENCH_select.json", json).expect("benchmark artifact is writable");
    println!("machine-readable results written to BENCH_select.json");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parsing_round_trips() {
        for mode in [
            ServeMode::Select,
            ServeMode::Ingest,
            ServeMode::Pool,
            ServeMode::Full,
        ] {
            assert_eq!(ServeMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(ServeMode::parse("bogus"), None);
    }

    #[test]
    fn legacy_flags_map_to_modes() {
        let args = |list: &[&str]| list.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>();
        assert_eq!(
            legacy_throughput_modes(&args(&["--pool"])),
            vec![ServeMode::Pool]
        );
        assert_eq!(
            legacy_throughput_modes(&args(&["--select"])),
            vec![ServeMode::Select]
        );
        assert_eq!(
            legacy_throughput_modes(&args(&[])),
            vec![ServeMode::Ingest, ServeMode::Pool, ServeMode::Select]
        );
        // `--pool` wins when both are passed, matching the old binary.
        assert_eq!(
            legacy_throughput_modes(&args(&["--pool", "--select"])),
            vec![ServeMode::Pool]
        );
    }

    #[test]
    fn owner_partition_is_stable_and_in_range() {
        for code in 0..256u64 {
            let w = owner_of(code, 4);
            assert!(w < 4);
            assert_eq!(w, owner_of(code, 4));
        }
        assert_eq!(owner_of(123, 1), 0);
    }

    #[test]
    fn slo_defaults_scale_with_the_join_window() {
        let config = ServeConfig::tiny();
        let slo = SloConfig::for_config(&config);
        assert_eq!(slo.max_join_occupancy, config.in_flight_ceiling as u64);
        assert!(slo.max_ingest_lag_epochs >= 1);
    }
}
