//! Headline numbers quoted in the abstract and conclusion of the paper:
//!
//! * ε ≈ 0.693 for p = 0.5;
//! * multi-label accuracy gap between the non-private and private warm
//!   regimes of ≈ 2.6 % (MediaMill) and ≈ 3.6 % (TextMining);
//! * a CTR difference of ≈ +0.0025 *in favour of* the private agents on the
//!   Criteo workload.

use p2b_bench::{save_series, Scale};
use p2b_datasets::{CriteoConfig, CriteoLikeGenerator, MultiLabelDataset};
use p2b_privacy::{amplified_epsilon, Participation};
use p2b_sim::{run_logged_experiment, LoggedExperimentConfig, Regime, RegimeOutcome, SeriesPoint};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn gap(outcomes: &[RegimeOutcome]) -> (f64, f64, f64) {
    let get = |regime: Regime| {
        outcomes
            .iter()
            .find(|o| o.regime == regime)
            .map(|o| o.average_reward)
            .unwrap_or(f64::NAN)
    };
    let non_private = get(Regime::WarmNonPrivate);
    let private = get(Regime::WarmPrivate);
    (non_private, private, non_private - private)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_env();
    println!("=== Headline numbers (paper abstract / Section 7) ===\n");

    // 1. Privacy budget at p = 0.5.
    let epsilon = amplified_epsilon(Participation::new(0.5)?, 0.0)?;
    println!("privacy budget at p = 0.5: epsilon = {epsilon:.6} (paper: ~0.693)\n");

    let num_agents = scale.pick(40, 200, 600);
    let per_agent = scale.pick(30, 100, 100);
    let mut all_points = Vec::new();

    // 2. Multi-label accuracy gaps.
    let mut rng = StdRng::seed_from_u64(80);
    for (name, dataset) in [
        (
            "mediamill",
            MultiLabelDataset::mediamill_like(num_agents * per_agent, &mut rng)?,
        ),
        (
            "textmining",
            MultiLabelDataset::textmining_like(num_agents * per_agent, &mut rng)?,
        ),
    ] {
        let agents = dataset.split_agents(num_agents, per_agent, &mut rng)?;
        let outcomes: Result<Vec<_>, _> = Regime::ALL
            .iter()
            .map(|&regime| {
                run_logged_experiment(
                    &agents,
                    LoggedExperimentConfig::new(
                        regime,
                        dataset.context_dimension(),
                        dataset.num_labels(),
                    )
                    .with_num_codes(1 << 5)
                    .with_seed(81),
                )
            })
            .collect();
        let outcomes = outcomes?;
        let (non_private, private, delta) = gap(&outcomes);
        println!(
            "{name}: non-private accuracy {non_private:.4}, private accuracy {private:.4}, \
             gap {delta:+.4} (paper: gap of 0.026 / 0.036)"
        );
        all_points.push(SeriesPoint::new(name, per_agent as f64, outcomes));
    }

    // 3. Criteo CTR difference.
    let generator = CriteoLikeGenerator::new(CriteoConfig::new(), &mut rng)?;
    let needed = num_agents * per_agent;
    let mut impressions = generator.generate(needed * 2, &mut rng)?;
    while impressions.len() < needed {
        impressions.extend(generator.generate(needed, &mut rng)?);
    }
    let agents = CriteoLikeGenerator::split_agents(&impressions, num_agents, per_agent)?;
    let outcomes: Result<Vec<_>, _> = Regime::ALL
        .iter()
        .map(|&regime| {
            run_logged_experiment(
                &agents,
                LoggedExperimentConfig::new(regime, 10, 40)
                    .with_num_codes(1 << 5)
                    .with_shuffler_threshold(10)
                    .with_seed(82),
            )
        })
        .collect();
    let outcomes = outcomes?;
    let (non_private, private, delta) = gap(&outcomes);
    println!(
        "criteo: non-private CTR {non_private:.4}, private CTR {private:.4}, \
         private - non-private = {:+.4} (paper: +0.0025 in favour of private)",
        -delta
    );
    all_points.push(SeriesPoint::new("criteo", per_agent as f64, outcomes));

    save_series("table_headline", &all_points)?;
    Ok(())
}
