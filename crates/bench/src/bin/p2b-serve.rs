//! `p2b-serve` — the closed-loop serving harness with latency SLOs.
//!
//! Drives the whole P2B pipeline (pool checkout → select → report →
//! shuffler engine → coalesced ingest → reward joins) as one service under
//! an open-loop seeded arrival process, measures decision latency, ingest
//! lag, join-buffer occupancy and pool churn, and writes `BENCH_serve.json`.
//! Exits non-zero when an SLO bar is violated.
//!
//! ```text
//! p2b-serve [--mode select|ingest|pool|full] [--quick]
//!           [--workers N] [--seed N]
//!           [--slo-p99-ms F] [--slo-ingest-lag-epochs N] [--slo-occupancy N]
//!           [--summary PATH] [--out PATH]
//! ```
//!
//! * `--mode` picks the subsystem slice; `full` (the default) runs the
//!   closed loop, the other three are the absorbed `throughput` parts.
//! * `--quick` forces the CI smoke scale (equivalent to `P2B_SCALE=quick`).
//! * `--summary PATH` additionally writes the *redacted* report — the
//!   worker-count-invariant deterministic summary with all wall-clock
//!   fields zeroed — which must be byte-identical across runs; the CI smoke
//!   job diffs two of them.
//! * `--out PATH` overrides the `BENCH_serve.json` destination.
//! * The three `--slo-*` flags tighten (or loosen) the default bars.

use p2b_bench::serve::{
    print_full_report, run_full, run_ingest_mode, run_pool_mode, run_select_mode, ServeConfig,
    ServeMode, SloConfig,
};
use p2b_bench::{BenchFailure, Scale};
use std::process::ExitCode;

struct Cli {
    mode: ServeMode,
    quick: bool,
    workers: Option<usize>,
    seed: Option<u64>,
    slo_p99_ms: Option<f64>,
    slo_ingest_lag_epochs: Option<u64>,
    slo_occupancy: Option<u64>,
    summary_path: Option<String>,
    out_path: String,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        mode: ServeMode::Full,
        quick: false,
        workers: None,
        seed: None,
        slo_p99_ms: None,
        slo_ingest_lag_epochs: None,
        slo_occupancy: None,
        summary_path: None,
        out_path: "BENCH_serve.json".to_owned(),
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--mode" => {
                let raw = value("--mode")?;
                cli.mode = ServeMode::parse(&raw)
                    .ok_or_else(|| format!("unknown mode {raw:?} (select|ingest|pool|full)"))?;
            }
            "--quick" => cli.quick = true,
            "--workers" => {
                cli.workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?,
                );
            }
            "--seed" => {
                cli.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                );
            }
            "--slo-p99-ms" => {
                cli.slo_p99_ms = Some(
                    value("--slo-p99-ms")?
                        .parse()
                        .map_err(|e| format!("--slo-p99-ms: {e}"))?,
                );
            }
            "--slo-ingest-lag-epochs" => {
                cli.slo_ingest_lag_epochs = Some(
                    value("--slo-ingest-lag-epochs")?
                        .parse()
                        .map_err(|e| format!("--slo-ingest-lag-epochs: {e}"))?,
                );
            }
            "--slo-occupancy" => {
                cli.slo_occupancy = Some(
                    value("--slo-occupancy")?
                        .parse()
                        .map_err(|e| format!("--slo-occupancy: {e}"))?,
                );
            }
            "--summary" => cli.summary_path = Some(value("--summary")?),
            "--out" => cli.out_path = value("--out")?,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(message) => return BenchFailure::Usage(message).report("p2b-serve"),
    };

    let scale = if cli.quick {
        Scale::Quick
    } else {
        Scale::from_env()
    };
    match cli.mode {
        ServeMode::Select => {
            run_select_mode(scale);
            ExitCode::SUCCESS
        }
        ServeMode::Ingest => match run_ingest_mode(scale) {
            Ok(()) => ExitCode::SUCCESS,
            Err(failure) => failure.report("p2b-serve"),
        },
        ServeMode::Pool => {
            run_pool_mode(scale);
            ExitCode::SUCCESS
        }
        ServeMode::Full => {
            let mut config = ServeConfig::at_scale(scale);
            if let Some(workers) = cli.workers {
                config.workers = workers.max(1);
            }
            if let Some(seed) = cli.seed {
                config.seed = seed;
            }
            let mut slo = SloConfig::for_config(&config);
            if let Some(ms) = cli.slo_p99_ms {
                slo.max_p99_decision_nanos = (ms * 1e6) as u64;
            }
            if let Some(lag) = cli.slo_ingest_lag_epochs {
                slo.max_ingest_lag_epochs = lag;
            }
            if let Some(occupancy) = cli.slo_occupancy {
                slo.max_join_occupancy = occupancy;
            }

            let scale_label = match scale {
                Scale::Quick => "quick",
                Scale::Default => "default",
                Scale::Full => "full",
            };
            let report = run_full(&config, &slo, scale_label);
            print_full_report(&report);

            let json = serde_json::to_string_pretty(&report).expect("reports serialize");
            if let Err(error) = std::fs::write(&cli.out_path, json) {
                return BenchFailure::Io(format!("{}: {error}", cli.out_path)).report("p2b-serve");
            }
            println!("machine-readable results written to {}", cli.out_path);

            if let Some(path) = &cli.summary_path {
                let redacted =
                    serde_json::to_string_pretty(&report.redacted()).expect("reports serialize");
                if let Err(error) = std::fs::write(path, redacted) {
                    return BenchFailure::Io(format!("{path}: {error}")).report("p2b-serve");
                }
                println!("deterministic summary written to {path}");
            }

            if report.slo.pass {
                ExitCode::SUCCESS
            } else {
                BenchFailure::SloViolation(format!(
                    "{} of the serve SLO bars failed (see table above)",
                    report.slo.violations.len()
                ))
                .report("p2b-serve")
            }
        }
    }
}
