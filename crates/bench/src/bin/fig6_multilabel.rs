//! Figure 6: multi-label classification accuracy (MediaMill-like, d = 20,
//! A = 40; TextMining-like, d = 20, A = 22) as local agents observe more
//! interactions. 70 % of the agents train / share, the remaining 30 % are the
//! test population whose accuracy is reported. k = 2⁵ codes.

use p2b_bench::{print_series, save_series, Scale};
use p2b_datasets::{MultiLabelDataset, MultiLabelInstance};
use p2b_sim::{parallel_map, run_logged_experiment, LoggedExperimentConfig, Regime, SeriesPoint};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_dataset(
    name: &str,
    dataset: &MultiLabelDataset,
    num_agents: usize,
    interaction_sweep: &[usize],
    seed: u64,
) -> Result<Vec<SeriesPoint>, Box<dyn std::error::Error>> {
    let mut series = Vec::new();
    for &samples_per_agent in interaction_sweep {
        let mut rng = StdRng::seed_from_u64(seed + samples_per_agent as u64);
        let agents: Vec<Vec<MultiLabelInstance>> =
            dataset.split_agents(num_agents, samples_per_agent, &mut rng)?;
        let outcomes = parallel_map(Regime::ALL.to_vec(), 3, |regime| {
            let config = LoggedExperimentConfig::new(
                regime,
                dataset.context_dimension(),
                dataset.num_labels(),
            )
            .with_num_codes(1 << 5)
            .with_seed(seed);
            run_logged_experiment(&agents, config)
        });
        let outcomes: Result<Vec<_>, _> = outcomes.into_iter().collect();
        series.push(SeriesPoint::new(
            "local_interactions",
            samples_per_agent as f64,
            outcomes?,
        ));
    }
    print_series(&format!("Figure 6: {name}"), &series);
    Ok(series)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_env();
    let num_agents = scale.pick(40, 200, 600);
    let interaction_sweep: Vec<usize> = scale.pick(
        vec![10, 25],
        vec![10, 25, 50, 75, 100],
        vec![10, 25, 50, 75, 100],
    );
    let max_per_agent = *interaction_sweep.iter().max().expect("sweep is non-empty");

    let mut rng = StdRng::seed_from_u64(60);
    let mediamill = MultiLabelDataset::mediamill_like(num_agents * max_per_agent, &mut rng)?;
    let textmining = MultiLabelDataset::textmining_like(num_agents * max_per_agent, &mut rng)?;

    let mm_series = run_dataset(
        "MediaMill-like (d=20, A=40)",
        &mediamill,
        num_agents,
        &interaction_sweep,
        61,
    )?;
    save_series("fig6_mediamill", &mm_series)?;

    let tm_series = run_dataset(
        "TextMining-like (d=20, A=22)",
        &textmining,
        num_agents,
        &interaction_sweep,
        62,
    )?;
    save_series("fig6_textmining", &tm_series)?;
    Ok(())
}
