//! Figure 5: average reward as a function of the context dimension
//! d ∈ {6, …, 20}, with U = 20 000 users, A = 20 actions and T = 20
//! interactions per user.
//!
//! The default scale uses U = 2 000 users (the paper's 20 000 behind
//! `P2B_SCALE=full`); the downward trend with growing d and the relative
//! ordering of the regimes are already visible at that size.

use p2b_bench::{print_series, save_series, Scale};
use p2b_datasets::SyntheticConfig;
use p2b_sim::{parallel_map, run_synthetic_population, PopulationConfig, Regime, SeriesPoint};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_env();
    let num_users = scale.pick(200, 2_000, 20_000);
    let dimensions: Vec<usize> = scale.pick(
        vec![6, 10, 14],
        vec![6, 8, 10, 12, 14, 16, 18, 20],
        (6..=20).collect(),
    );
    let num_actions = 20;
    let interactions = 20;
    // See fig4_synthetic: the code space and threshold shrink with the scale
    // so that the shuffler's crowd-blending filter is not starved of data.
    let num_codes = scale.pick(64, 256, 1 << 10);
    let threshold = scale.pick(2, 3, 10);
    let flush_every = scale.pick(256, 1024, 8192);
    let corpus_size = scale.pick(512, 2048, 4096);

    let mut series = Vec::new();
    for &dimension in &dimensions {
        let env = SyntheticConfig::new(dimension, num_actions);
        let outcomes = parallel_map(Regime::ALL.to_vec(), 3, |regime| {
            let mut config = PopulationConfig::new(regime, num_users)
                .with_interactions_per_user(interactions)
                .with_num_codes(num_codes)
                .with_shuffler_threshold(threshold)
                .with_encoder_corpus_size(corpus_size)
                .with_seed(2_000 + dimension as u64);
            config.flush_every_reports = flush_every;
            run_synthetic_population(env, config)
        });
        let outcomes: Result<Vec<_>, _> = outcomes.into_iter().collect();
        series.push(SeriesPoint::new(
            "context_dimension",
            dimension as f64,
            outcomes?,
        ));
    }
    print_series(
        &format!("Figure 5: U = {num_users}, A = {num_actions}, T = {interactions}"),
        &series,
    );
    save_series("fig5_dimensionality", &series)?;
    Ok(())
}
