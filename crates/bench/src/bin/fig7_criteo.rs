//! Figure 7: Criteo-like online advertising — click-through rate of the three
//! regimes as local agents accumulate interactions, for k = 2⁵ and k = 2⁷
//! encoder codes (d = 10, A = 40, shuffling threshold 10).
//!
//! The paper uses 3 000 agents with 300 interactions each; the default scale
//! runs 300 agents to keep the synthetic log generation and the sweep fast.

use p2b_bench::{print_series, save_series, Scale};
use p2b_datasets::{CriteoConfig, CriteoLikeGenerator, LoggedImpression};
use p2b_sim::{parallel_map, run_logged_experiment, LoggedExperimentConfig, Regime, SeriesPoint};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_env();
    let num_agents = scale.pick(60, 300, 3_000);
    let interaction_sweep: Vec<usize> = scale.pick(
        vec![25, 50],
        vec![25, 50, 100, 200, 300],
        vec![50, 100, 200, 300],
    );
    let max_per_agent = *interaction_sweep.iter().max().expect("sweep is non-empty");

    // Generate enough retained impressions: the top-40 filter discards a
    // fraction of the raw records, so oversample by 2x and verify.
    let mut rng = StdRng::seed_from_u64(70);
    let generator = CriteoLikeGenerator::new(CriteoConfig::new(), &mut rng)?;
    let needed = num_agents * max_per_agent;
    let mut impressions = generator.generate(needed * 2, &mut rng)?;
    while impressions.len() < needed {
        impressions.extend(generator.generate(needed, &mut rng)?);
    }
    println!(
        "generated {} retained impressions for {} agents x {} interactions",
        impressions.len(),
        num_agents,
        max_per_agent
    );

    for &num_codes in &[1usize << 5, 1 << 7] {
        let mut series = Vec::new();
        for &per_agent in &interaction_sweep {
            let agents: Vec<Vec<LoggedImpression>> =
                CriteoLikeGenerator::split_agents(&impressions, num_agents, per_agent)?;
            let outcomes = parallel_map(Regime::ALL.to_vec(), 3, |regime| {
                let config = LoggedExperimentConfig::new(regime, 10, 40)
                    .with_num_codes(num_codes)
                    .with_shuffler_threshold(10)
                    .with_seed(71);
                run_logged_experiment(&agents, config)
            });
            let outcomes: Result<Vec<_>, _> = outcomes.into_iter().collect();
            series.push(SeriesPoint::new(
                "local_interactions",
                per_agent as f64,
                outcomes?,
            ));
        }
        print_series(
            &format!("Figure 7: Criteo-like CTR, k = {num_codes} (d=10, A=40)"),
            &series,
        );
        save_series(&format!("fig7_criteo_k{num_codes}"), &series)?;
    }
    Ok(())
}
