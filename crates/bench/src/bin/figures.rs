//! All-in-one reproduction of the paper's utility-vs-privacy results
//! (Figures 4–7): the scenario matrix of `p2b_experiments` crossed over
//! every workload, all five privacy regimes (non-private / LDP / P2B
//! shuffle / central-DP tree aggregation / secure aggregation) and every
//! policy, emitted as JSON + CSV under `target/experiments/`, plus an
//! `accounting.json` artifact comparing the shuffle ledger's
//! pure-composition ε against the ρ-zCDP-accounted ε at horizon T = 10⁴.
//!
//! Flags:
//!
//! * `--smoke` — tiny rounds/users for CI; also *enforces* the paper's
//!   headline ordering (P2B ≥ randomized response on the synthetic
//!   benchmark), the presence of per-cell (ε, δ) — central-DP included —
//!   the absence of a claimed (ε, δ) on secure-aggregation cells (a trust
//!   split is not a DP guarantee), and the strict zCDP tightening at
//!   T = 10⁴. Each failure class exits with its own nonzero code (see
//!   [`BenchFailure::exit_code`]) and a one-line diagnostic, so the CI
//!   harness can tell a broken invariant from a broken environment.
//! * `--seed <n>` — base seed (default 2026).

use p2b_bench::{experiments_dir, BenchFailure};
use p2b_experiments::{
    run_matrix, run_streaming_shuffle, write_matrix_csv, write_matrix_json, MatrixConfig,
    MatrixResult, PolicyKind, PrivacyRegime, ScenarioKind, CENTRAL_TARGET_DELTA,
};
use p2b_privacy::CompositionComparison;
use std::process::ExitCode;

/// Horizon of the pure-vs-zCDP shuffle-ledger comparison in the accounting
/// artifact: 10⁴ reporting opportunities, the scale at which zCDP's O(√k)
/// composition visibly separates from pure O(k) composition.
const ACCOUNTING_HORIZON: u32 = 10_000;

/// One central-DP cell's quoted stream ε in the accounting artifact.
#[derive(serde::Serialize)]
struct CentralEpsilon {
    /// `scenario_key#repeat` of the cell.
    cell: String,
    /// The ε quoted at the documented target δ.
    epsilon: f64,
}

/// The emitted accounting artifact: the same per-batch shuffle guarantee
/// composed through both backends, plus the central-DP stream's quoted ε.
#[derive(serde::Serialize)]
struct AccountingArtifact {
    /// Side-by-side shuffle-ledger composition over [`ACCOUNTING_HORIZON`].
    shuffle_ledger: CompositionComparison,
    /// ε quoted by each central-DP cell, straight from the matrix result.
    central_dp_epsilon: Vec<CentralEpsilon>,
    /// The δ the central-DP ε values are quoted at.
    central_dp_target_delta: f64,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed = match args.iter().position(|a| a == "--seed") {
        Some(i) => {
            let raw = match args.get(i + 1) {
                Some(raw) => raw,
                None => return BenchFailure::Usage("--seed requires a value".into()).report("figures"),
            };
            match raw.parse::<u64>() {
                Ok(seed) => seed,
                Err(e) => return BenchFailure::Usage(format!("--seed: {e}")).report("figures"),
            }
        }
        None => 2026,
    };
    match run(smoke, seed) {
        Ok(()) => ExitCode::SUCCESS,
        Err(failure) => failure.report("figures"),
    }
}

fn run(smoke: bool, seed: u64) -> Result<(), BenchFailure> {
    let config = if smoke {
        MatrixConfig::smoke()
    } else {
        let mut full = MatrixConfig::new();
        full.policies = PolicyKind::ALL.to_vec();
        full
    }
    .with_seed(seed);

    println!(
        "Scenario matrix: {} scenarios x {} regimes x {} policies x {} repeat(s) = {} cells \
         ({} users x {} rounds each, seed {seed})",
        config.scenarios.len(),
        config.regimes.len(),
        config.policies.len(),
        config.repeats,
        config.num_cells(),
        config.num_users,
        config.interactions_per_user,
    );

    let result =
        run_matrix(&config).map_err(|e| BenchFailure::Runtime(format!("scenario matrix: {e}")))?;
    for &scenario in &config.scenarios {
        print_scenario_table(&config, &result, scenario);
    }

    // Serving-scale cross-check of the shuffled regime: the same pipeline
    // driven through p2b_sim::run_streaming_population (parallel producers
    // into the sharded engine of a full P2bSystem).
    let streaming = run_streaming_shuffle(&config, 4, seed ^ 0x5EED)
        .map_err(|e| BenchFailure::Runtime(format!("streaming cross-check: {e}")))?;
    let received: u64 = streaming
        .round_stats
        .iter()
        .map(|s| s.received as u64)
        .sum();
    println!(
        "\nStreaming cross-check (4 producers, {} shards): {} submitted, {} received, \
         {} batches, per-report eps = {:.4}",
        config.shuffler_shards,
        streaming.submitted,
        received,
        streaming.ledger.records().len(),
        streaming.ledger.per_report_epsilon(),
    );
    if received != streaming.submitted {
        return Err(BenchFailure::InvariantViolation(format!(
            "streaming engine lost reports ({} submitted, {received} received)",
            streaming.submitted
        )));
    }

    let dir = experiments_dir();
    let json_path = dir.join("figures.json");
    let csv_path = dir.join("figures.csv");
    write_matrix_json(&json_path, &result)
        .map_err(|e| BenchFailure::Io(format!("{}: {e}", json_path.display())))?;
    write_matrix_csv(&csv_path, &result)
        .map_err(|e| BenchFailure::Io(format!("{}: {e}", csv_path.display())))?;
    let csv_rows: usize = result.cells.iter().map(|c| c.series.len()).sum();
    println!(
        "\nresults written to {} and {} ({csv_rows} CSV rows)",
        json_path.display(),
        csv_path.display(),
    );

    // Accounting artifact: the shuffle ledger's weakest batch guarantee
    // composed over 10^4 opportunities through both backends, plus the
    // central-DP cells' quoted stream ε values.
    let comparison = streaming
        .ledger
        .zcdp_composed_over(ACCOUNTING_HORIZON, 1e-6)
        .map_err(|e| BenchFailure::Runtime(format!("zCDP composition: {e}")))?
        .ok_or_else(|| {
            BenchFailure::InvariantViolation(
                "streaming ledger recorded no non-empty batch".to_owned(),
            )
        })?;
    let central_dp_epsilon: Vec<CentralEpsilon> = result
        .cells
        .iter()
        .filter(|c| c.spec.regime == PrivacyRegime::CentralDp)
        .filter_map(|c| {
            c.epsilon.map(|e| CentralEpsilon {
                cell: format!("{}#{}", c.spec.scenario.key(), c.spec.repeat),
                epsilon: e,
            })
        })
        .collect();
    let artifact = AccountingArtifact {
        shuffle_ledger: comparison,
        central_dp_epsilon,
        central_dp_target_delta: CENTRAL_TARGET_DELTA,
    };
    let accounting_path = dir.join("accounting.json");
    let accounting_json = serde_json::to_string_pretty(&artifact)
        .map_err(|e| BenchFailure::Runtime(format!("accounting artifact: {e}")))?;
    std::fs::write(&accounting_path, accounting_json)
        .map_err(|e| BenchFailure::Io(format!("{}: {e}", accounting_path.display())))?;
    println!(
        "accounting artifact written to {}: horizon {} pure eps = {:.1}, zCDP eps = {:.1}",
        accounting_path.display(),
        ACCOUNTING_HORIZON,
        artifact.shuffle_ledger.pure_epsilon,
        artifact.shuffle_ledger.zcdp_epsilon,
    );

    if smoke {
        enforce_headline_invariants(&result)?;
        enforce_accounting_invariants(&artifact)?;
        println!(
            "smoke invariants hold: P2B >= randomized response on the synthetic scenario; \
             every private cell (central-DP included) reports (eps, delta); \
             secure-agg cells claim no guarantee; \
             zCDP eps {:.1} < pure eps {:.1} at horizon {}",
            artifact.shuffle_ledger.zcdp_epsilon,
            artifact.shuffle_ledger.pure_epsilon,
            ACCOUNTING_HORIZON,
        );
    }
    Ok(())
}

/// The zCDP acceptance invariant: at horizon 10⁴ the zCDP-accounted shuffle
/// ledger must be *strictly* tighter than pure sequential composition, and
/// every central-DP cell must quote a finite positive ε.
fn enforce_accounting_invariants(artifact: &AccountingArtifact) -> Result<(), BenchFailure> {
    let cmp = &artifact.shuffle_ledger;
    if cmp.zcdp_epsilon >= cmp.pure_epsilon {
        return Err(BenchFailure::InvariantViolation(format!(
            "zCDP accounting must be strictly tighter at horizon {}: zCDP {:.3} vs pure {:.3}",
            cmp.horizon, cmp.zcdp_epsilon, cmp.pure_epsilon
        )));
    }
    if artifact.central_dp_epsilon.is_empty() {
        return Err(BenchFailure::InvariantViolation(
            "no central-DP cell reported an epsilon".to_owned(),
        ));
    }
    for entry in &artifact.central_dp_epsilon {
        if !entry.epsilon.is_finite() || entry.epsilon <= 0.0 {
            return Err(BenchFailure::InvariantViolation(format!(
                "central-DP cell {} quotes a degenerate eps {}",
                entry.cell, entry.epsilon
            )));
        }
    }
    Ok(())
}

/// Prints one scenario's utility table: one row per policy × repeat, one
/// column per regime, plus the achieved per-report guarantee.
fn print_scenario_table(config: &MatrixConfig, result: &MatrixResult, scenario: ScenarioKind) {
    println!(
        "\n=== {} ({}) — final cumulative reward ===",
        scenario,
        scenario.paper_figure()
    );
    print!("{:>20}", "policy");
    for regime in &config.regimes {
        print!(" {:>24}", regime.key());
    }
    println!();
    for &policy in &config.policies {
        for repeat in 0..config.repeats {
            let label = if config.repeats > 1 {
                format!("{}#{repeat}", policy.key())
            } else {
                policy.key().to_owned()
            };
            print!("{label:>20}");
            for &regime in &config.regimes {
                let found = result.cells.iter().find(|c| {
                    c.spec.scenario == scenario
                        && c.spec.regime == regime
                        && c.spec.policy == policy
                        && c.spec.repeat == repeat
                });
                let text = found.map_or_else(
                    || "-".to_owned(),
                    |cell| {
                        let guarantee = match (cell.epsilon, cell.delta) {
                            (Some(e), Some(d)) => format!(" (eps {e:.3}, delta {d:.1e})"),
                            _ => String::new(),
                        };
                        format!("{:.1}{guarantee}", cell.final_cumulative_reward)
                    },
                );
                print!(" {text:>24}");
            }
            println!();
        }
    }
}

/// The acceptance invariants of the smoke run: the paper's qualitative
/// ordering on the synthetic benchmark and complete — but never
/// overclaimed — privacy accounting.
fn enforce_headline_invariants(result: &MatrixResult) -> Result<(), BenchFailure> {
    let cell = |regime| {
        result
            .cell(ScenarioKind::SyntheticGaussian, regime, PolicyKind::LinUcb)
            .ok_or_else(|| {
                BenchFailure::InvariantViolation(
                    "smoke matrix must include the synthetic LinUCB cells".to_owned(),
                )
            })
    };
    let ldp = cell(PrivacyRegime::LocalDp)?;
    let p2b = cell(PrivacyRegime::P2bShuffle)?;
    if p2b.final_cumulative_reward < ldp.final_cumulative_reward {
        return Err(BenchFailure::InvariantViolation(format!(
            "headline violated: P2B cumulative reward {:.2} < randomized response {:.2}",
            p2b.final_cumulative_reward, ldp.final_cumulative_reward
        )));
    }
    for cell in &result.cells {
        if cell.spec.regime.is_private() && (cell.epsilon.is_none() || cell.delta.is_none()) {
            return Err(BenchFailure::InvariantViolation(format!(
                "cell {}/{}/{} is private but missing its (eps, delta) record",
                cell.spec.scenario, cell.spec.regime, cell.spec.policy
            )));
        }
        // The converse overclaim: a regime without a DP guarantee (the
        // non-private ceiling, the secure-aggregation trust split) must
        // never publish one.
        if !cell.spec.regime.is_private() && (cell.epsilon.is_some() || cell.delta.is_some()) {
            return Err(BenchFailure::InvariantViolation(format!(
                "cell {}/{}/{} claims an (eps, delta) but its regime offers no DP guarantee",
                cell.spec.scenario, cell.spec.regime, cell.spec.policy
            )));
        }
    }
    Ok(())
}
