//! All-in-one reproduction of the paper's utility-vs-privacy results
//! (Figures 4–7): the scenario matrix of `p2b_experiments` crossed over
//! every workload, privacy regime and policy, emitted as JSON + CSV under
//! `target/experiments/`.
//!
//! Flags:
//!
//! * `--smoke` — tiny rounds/users for CI; also *enforces* the paper's
//!   headline ordering (P2B ≥ randomized response on the synthetic
//!   benchmark) and the presence of per-cell (ε, δ), exiting non-zero on
//!   violation so the harness cannot silently rot.
//! * `--seed <n>` — base seed (default 2026).

use p2b_bench::experiments_dir;
use p2b_experiments::{
    run_matrix, run_streaming_shuffle, write_matrix_csv, write_matrix_json, MatrixConfig,
    MatrixResult, PolicyKind, PrivacyRegime, ScenarioKind,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed = match args.iter().position(|a| a == "--seed") {
        Some(i) => args
            .get(i + 1)
            .ok_or("--seed requires a value")?
            .parse::<u64>()?,
        None => 2026,
    };

    let config = if smoke {
        MatrixConfig::smoke()
    } else {
        let mut full = MatrixConfig::new();
        full.policies = PolicyKind::ALL.to_vec();
        full
    }
    .with_seed(seed);

    println!(
        "Scenario matrix: {} scenarios x {} regimes x {} policies x {} repeat(s) = {} cells \
         ({} users x {} rounds each, seed {seed})",
        config.scenarios.len(),
        config.regimes.len(),
        config.policies.len(),
        config.repeats,
        config.num_cells(),
        config.num_users,
        config.interactions_per_user,
    );

    let result = run_matrix(&config)?;
    for &scenario in &config.scenarios {
        print_scenario_table(&config, &result, scenario);
    }

    // Serving-scale cross-check of the shuffled regime: the same pipeline
    // driven through p2b_sim::run_streaming_population (parallel producers
    // into the sharded engine of a full P2bSystem).
    let streaming = run_streaming_shuffle(&config, 4, seed ^ 0x5EED)?;
    let received: u64 = streaming
        .round_stats
        .iter()
        .map(|s| s.received as u64)
        .sum();
    println!(
        "\nStreaming cross-check (4 producers, {} shards): {} submitted, {} received, \
         {} batches, per-report eps = {:.4}",
        config.shuffler_shards,
        streaming.submitted,
        received,
        streaming.ledger.records().len(),
        streaming.ledger.per_report_epsilon(),
    );
    if received != streaming.submitted {
        return Err("streaming engine lost reports".into());
    }

    let dir = experiments_dir();
    let json_path = dir.join("figures.json");
    let csv_path = dir.join("figures.csv");
    write_matrix_json(&json_path, &result)?;
    write_matrix_csv(&csv_path, &result)?;
    let csv_rows: usize = result.cells.iter().map(|c| c.series.len()).sum();
    println!(
        "\nresults written to {} and {} ({csv_rows} CSV rows)",
        json_path.display(),
        csv_path.display(),
    );

    if smoke {
        enforce_headline_invariants(&result)?;
        println!("smoke invariants hold: P2B >= randomized response on the synthetic scenario; every private cell reports (eps, delta)");
    }
    Ok(())
}

/// Prints one scenario's utility table: one row per policy × repeat, one
/// column per regime, plus the achieved per-report guarantee.
fn print_scenario_table(config: &MatrixConfig, result: &MatrixResult, scenario: ScenarioKind) {
    println!(
        "\n=== {} ({}) — final cumulative reward ===",
        scenario,
        scenario.paper_figure()
    );
    print!("{:>20}", "policy");
    for regime in &config.regimes {
        print!(" {:>24}", regime.key());
    }
    println!();
    for &policy in &config.policies {
        for repeat in 0..config.repeats {
            let label = if config.repeats > 1 {
                format!("{}#{repeat}", policy.key())
            } else {
                policy.key().to_owned()
            };
            print!("{label:>20}");
            for &regime in &config.regimes {
                let found = result.cells.iter().find(|c| {
                    c.spec.scenario == scenario
                        && c.spec.regime == regime
                        && c.spec.policy == policy
                        && c.spec.repeat == repeat
                });
                let text = found.map_or_else(
                    || "-".to_owned(),
                    |cell| {
                        let guarantee = match (cell.epsilon, cell.delta) {
                            (Some(e), Some(d)) => format!(" (eps {e:.3}, delta {d:.1e})"),
                            _ => String::new(),
                        };
                        format!("{:.1}{guarantee}", cell.final_cumulative_reward)
                    },
                );
                print!(" {text:>24}");
            }
            println!();
        }
    }
}

/// The acceptance invariants of the smoke run: the paper's qualitative
/// ordering on the synthetic benchmark and complete privacy accounting.
fn enforce_headline_invariants(result: &MatrixResult) -> Result<(), Box<dyn std::error::Error>> {
    let cell = |regime| {
        result
            .cell(ScenarioKind::SyntheticGaussian, regime, PolicyKind::LinUcb)
            .ok_or("smoke matrix must include the synthetic LinUCB cells")
    };
    let ldp = cell(PrivacyRegime::LocalDp)?;
    let p2b = cell(PrivacyRegime::P2bShuffle)?;
    if p2b.final_cumulative_reward < ldp.final_cumulative_reward {
        return Err(format!(
            "headline violated: P2B cumulative reward {:.2} < randomized response {:.2}",
            p2b.final_cumulative_reward, ldp.final_cumulative_reward
        )
        .into());
    }
    for cell in &result.cells {
        if cell.spec.regime.is_private() && (cell.epsilon.is_none() || cell.delta.is_none()) {
            return Err(format!(
                "cell {}/{}/{} is private but missing its (eps, delta) record",
                cell.spec.scenario, cell.spec.regime, cell.spec.policy
            )
            .into());
        }
    }
    Ok(())
}
