//! Figure 4: synthetic benchmark — average reward of the three regimes as the
//! user population grows, for A ∈ {10, 20, 50}, d = 10, T = 10.
//!
//! The paper's x-axis runs to 10⁶ users; the default scale stops at 10⁴ to
//! keep the runtime laptop-friendly (`P2B_SCALE=full` restores the larger
//! sweep, `P2B_SCALE=quick` shrinks it for smoke tests). The qualitative
//! shape — warm ≫ cold, with the private variant trailing the non-private
//! one — is established well before the largest populations.

use p2b_bench::{print_series, save_series, Scale};
use p2b_datasets::SyntheticConfig;
use p2b_sim::{parallel_map, run_synthetic_population, PopulationConfig, Regime, SeriesPoint};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_env();
    let populations: Vec<usize> = scale.pick(
        vec![100, 300],
        vec![100, 300, 1_000, 3_000, 10_000],
        vec![100, 1_000, 10_000, 100_000, 1_000_000],
    );
    let action_counts = scale.pick(vec![10], vec![10, 20, 50], vec![10, 20, 50]);
    let dimension = 10;
    let interactions = 10;
    // The paper pairs k = 2^10 codes and threshold l = 10 with populations up
    // to 10^6 users. At the reduced default populations that combination would
    // drop almost every report, so the code space, the crowd-blending
    // threshold and the shuffler batch size shrink with the scale (the paper
    // itself notes that l "can always be matched to the shuffler's threshold").
    let num_codes = scale.pick(64, 256, 1 << 10);
    let threshold = scale.pick(2, 3, 10);
    let flush_every = scale.pick(256, 1024, 8192);
    let corpus_size = scale.pick(512, 2048, 4096);

    for num_actions in action_counts {
        let env = SyntheticConfig::new(dimension, num_actions);
        let mut series = Vec::new();
        for &num_users in &populations {
            // The three regimes are independent; run them in parallel.
            let outcomes = parallel_map(Regime::ALL.to_vec(), 3, |regime| {
                let mut config = PopulationConfig::new(regime, num_users)
                    .with_interactions_per_user(interactions)
                    .with_num_codes(num_codes)
                    .with_shuffler_threshold(threshold)
                    .with_encoder_corpus_size(corpus_size)
                    .with_seed(1_000 + num_users as u64);
                config.flush_every_reports = flush_every;
                run_synthetic_population(env, config)
            });
            let outcomes: Result<Vec<_>, _> = outcomes.into_iter().collect();
            series.push(SeriesPoint::new("num_users", num_users as f64, outcomes?));
        }
        print_series(
            &format!("Figure 4: A = {num_actions}, d = {dimension}, T = {interactions}"),
            &series,
        );
        save_series(&format!("fig4_synthetic_a{num_actions}"), &series)?;
    }
    Ok(())
}
