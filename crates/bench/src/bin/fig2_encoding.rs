//! Figure 2: encoding of the normalized 3-dimensional vector space.
//!
//! The paper's example uses q = 1 decimal digit, giving a simplex grid of
//! n = 66 points, encoded into k = 6 codes with a minimum cluster size of
//! l = 9. This binary enumerates the grid, fits the k-means encoder and
//! reports the resulting cluster sizes and the crowd-blending parameter.

use p2b_bench::save_series;
use p2b_encoding::{
    enumerate_simplex_grid, simplex_cardinality, Encoder, KMeansConfig, KMeansEncoder,
};
use p2b_sim::{Regime, RegimeOutcome, SeriesPoint};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dimension = 3;
    let precision = 1;
    let num_codes = 6;

    let cardinality = simplex_cardinality(dimension, precision)?;
    println!("Figure 2: d = {dimension}, q = {precision}, k = {num_codes}");
    println!("simplex grid cardinality n = {cardinality} (paper: 66)");

    let grid = enumerate_simplex_grid(dimension, precision, 10_000)?;
    let corpus: Vec<_> = grid.iter().map(|point| point.to_vector()).collect();

    let mut rng = StdRng::seed_from_u64(2);
    let encoder = KMeansEncoder::fit(
        &corpus,
        KMeansConfig::new(num_codes).with_iterations(200),
        &mut rng,
    )?;
    let stats = encoder.stats();

    println!("\ncluster sizes over the {} grid points:", corpus.len());
    for (code, size) in stats.cluster_sizes.iter().enumerate() {
        println!("  code y{code}: {size} grid points");
    }
    println!(
        "minimum cluster size l = {} (paper's example: 9), mean distortion {:.5}",
        stats.min_cluster_size, stats.mean_distortion
    );
    println!(
        "optimal uniform split would give n/k = {:.1} points per code",
        cardinality as f64 / num_codes as f64
    );

    // Persist cluster sizes as a pseudo-series so the result is recorded in
    // the same format as the other figures.
    let series: Vec<SeriesPoint> = stats
        .cluster_sizes
        .iter()
        .enumerate()
        .map(|(code, &size)| {
            SeriesPoint::new(
                "cluster_size",
                code as f64,
                vec![RegimeOutcome {
                    regime: Regime::WarmPrivate,
                    average_reward: size as f64,
                    reward_stddev: 0.0,
                    cumulative_regret: 0.0,
                    interactions: size as u64,
                    reports_to_server: 0,
                    epsilon: Some(0.0),
                }],
            )
        })
        .collect();
    save_series("fig2_encoding", &series)?;
    Ok(())
}
