//! Figure 3: the differential-privacy ε as a function of the participation
//! probability p (Equation 3, ε̄ = 0).

use p2b_bench::save_series;
use p2b_privacy::{amplified_delta, epsilon_sweep, Participation};
use p2b_sim::{Regime, RegimeOutcome, SeriesPoint};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let points = epsilon_sweep(0.05, 0.95, 19)?;

    println!("Figure 3: ε as a function of the participation probability p");
    println!("{:>8} {:>10} {:>14}", "p", "epsilon", "delta (l=10)");
    let mut series = Vec::new();
    for point in &points {
        let delta = amplified_delta(Participation::new(point.p)?, 10, 0.1)?;
        println!("{:>8.2} {:>10.4} {:>14.3e}", point.p, point.epsilon, delta);
        series.push(SeriesPoint::new(
            "participation",
            point.p,
            vec![RegimeOutcome {
                regime: Regime::WarmPrivate,
                average_reward: point.epsilon,
                reward_stddev: 0.0,
                cumulative_regret: 0.0,
                interactions: 0,
                reports_to_server: 0,
                epsilon: Some(point.epsilon),
            }],
        ));
    }
    println!(
        "\nheadline: p = 0.5 gives ε = {:.6} ≈ ln 2 (paper: ≈ 0.693)",
        points
            .iter()
            .min_by(|a, b| (a.p - 0.5).abs().partial_cmp(&(b.p - 0.5).abs()).unwrap())
            .map(|p| p.epsilon)
            .unwrap_or(f64::NAN)
    );

    save_series("fig3_epsilon", &series)?;
    Ok(())
}
