//! Shard-count scaling of the streaming shuffler engine.
//!
//! Submits the same multi-producer report stream to a
//! [`p2b_shuffler::ShufflerEngine`] configured with 1, 2, 4 and 8 shards and
//! reports end-to-end throughput (submission through merged-batch delivery),
//! plus the speedup over the single-shard baseline. The single-shard
//! configuration is the engine's equivalent of the legacy
//! `ShufflerPipeline` lane, so the speedup column is the direct payoff of
//! sharding.
//!
//! Numbers are only meaningful on a multi-core machine: every shard is one
//! worker thread, and the producers run on `PRODUCERS` more. Run with:
//!
//! ```sh
//! cargo run --release -p p2b-bench --bin throughput
//! P2B_SCALE=full cargo run --release -p p2b-bench --bin throughput
//! ```

use p2b_bench::Scale;
use p2b_shuffler::{EncodedReport, RawReport, ShufflerConfig, ShufflerEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Producer threads submitting concurrently in every configuration.
const PRODUCERS: usize = 8;
/// Distinct encoded context codes in the synthetic stream.
const CODES: usize = 64;
/// Crowd-blending threshold (the paper's default `l`).
const THRESHOLD: usize = 10;

fn producer_stream(producer: usize, reports: usize) -> Vec<RawReport> {
    let mut rng = StdRng::seed_from_u64(producer as u64 + 1);
    (0..reports)
        .map(|i| {
            let code = rng.gen_range(0..CODES);
            let action = rng.gen_range(0..10);
            RawReport::with_timestamp(
                format!("producer-{producer}"),
                i as u64,
                EncodedReport::new(code, action, f64::from(rng.gen_range(0..2u8)))
                    .expect("rewards 0/1 are valid"),
            )
        })
        .collect()
}

struct RunResult {
    shards: usize,
    wall_secs: f64,
    reports_per_sec: f64,
    batches: usize,
    released: usize,
}

fn run(shards: usize, streams: &[Vec<RawReport>], batch_size: usize) -> RunResult {
    let engine = ShufflerEngine::builder(ShufflerConfig::new(THRESHOLD))
        .shards(shards)
        .batch_size(batch_size)
        .shard_queue_capacity(batch_size)
        .build()
        .expect("static configuration is valid");
    let total: usize = streams.iter().map(Vec::len).sum();

    let start = Instant::now();
    let handle = engine.spawn(42);
    std::thread::scope(|scope| {
        for stream in streams {
            let handle_ref = &handle;
            scope.spawn(move || {
                for report in stream.iter().cloned() {
                    handle_ref
                        .submit(report)
                        .expect("engine stays open during the run");
                }
            });
        }
    });
    let output = handle.finish();
    let wall_secs = start.elapsed().as_secs_f64();

    let received: usize = output
        .batches
        .iter()
        .map(|b| b.batch.stats().received)
        .sum();
    assert_eq!(received, total, "the engine must conserve every report");
    RunResult {
        shards,
        wall_secs,
        reports_per_sec: total as f64 / wall_secs,
        batches: output.batches.len(),
        released: output
            .batches
            .iter()
            .map(|b| b.batch.stats().released)
            .sum(),
    }
}

fn main() {
    let scale = Scale::from_env();
    let per_producer = scale.pick(5_000, 50_000, 250_000);
    let batch_size = scale.pick(1_024, 4_096, 8_192);
    let total = per_producer * PRODUCERS;

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!("Sharded shuffler engine throughput");
    println!(
        "{total} reports, {PRODUCERS} producers, batch size {batch_size}, \
         threshold {THRESHOLD}, {cores} hardware threads"
    );
    if cores < 4 {
        println!("warning: fewer than 4 hardware threads; shard scaling will not show here");
    }

    let streams: Vec<Vec<RawReport>> = (0..PRODUCERS)
        .map(|p| producer_stream(p, per_producer))
        .collect();

    // Warm-up pass so allocator and page-cache effects do not favor the
    // later (multi-shard) runs.
    let _ = run(1, &streams, batch_size);

    println!(
        "\n{:>7} {:>10} {:>14} {:>9} {:>10} {:>9}",
        "shards", "wall (ms)", "reports/s", "batches", "released", "speedup"
    );
    let mut baseline = None;
    for shards in [1usize, 2, 4, 8] {
        let result = run(shards, &streams, batch_size);
        let baseline_rate = *baseline.get_or_insert(result.reports_per_sec);
        println!(
            "{:>7} {:>10.1} {:>14.0} {:>9} {:>10} {:>8.2}x",
            result.shards,
            result.wall_secs * 1e3,
            result.reports_per_sec,
            result.batches,
            result.released,
            result.reports_per_sec / baseline_rate
        );
    }
    println!(
        "\nspeedup is relative to the 1-shard engine; see README.md#performance \
         for the result table template"
    );
}
