//! Serving-path throughput: shuffler-engine shard scaling and central-model
//! ingest scaling.
//!
//! **Part 1 — engine scaling.** Submits the same multi-producer report
//! stream to a [`p2b_shuffler::ShufflerEngine`] configured with 1, 2, 4 and
//! 8 shards and reports end-to-end throughput (submission through
//! merged-batch delivery), plus the speedup over the single-shard baseline.
//!
//! **Part 2 — ingest scaling.** Replays the same shuffled batches into a
//! [`p2b_core::CentralServer`] through its two ingestion paths:
//!
//! * `sequential` — the historical reference: one model update per report
//!   (context vectors memoized per batch);
//! * `coalesced` — the model-service path: batches grouped by
//!   `(code, action)` into weighted sufficient-statistics updates,
//!   dispatched to 1, 2 or 4 ingest shards.
//!
//! The stream reuses each `(code, action)` pair heavily (≥ 10×), which is
//! what real shuffled batches look like after crowd-blending thresholding —
//! every released code appears at least `l` times by construction — and is
//! exactly the regime the coalescing ingester exploits.
//!
//! **Part 3 — agent-pool serving.** Drives a bounded
//! [`p2b_core::AgentPool`] with a skewed context-code stream (80% of the
//! traffic on 20% of the codes) at several residency budgets and storage
//! shard counts, measuring checkout/interact/checkin throughput, eviction
//! and rehydration rates, and the resident-model memory ceiling the budget
//! enforces.
//!
//! **Part 4 — single-decision select throughput.** Times the three LinUCB
//! scoring paths over identical trained models at several `(d, actions)`
//! shapes:
//!
//! * `reference` — the historical per-arm scalar path (two allocations per
//!   arm per decision), preserved verbatim as the f64 source of truth;
//! * `arena_f64` — the flat element-major score arena with reusable scratch
//!   buffers (allocation-free and **bit-identical** to the reference — the
//!   run asserts the two paths pick the same action stream);
//! * `arena_f32` — the derived single-precision scoring tier.
//!
//! Parts 1–2 are written to `BENCH_ingest.json`, part 3 to
//! `BENCH_pool.json`, part 4 to `BENCH_select.json` (all machine-readable,
//! all archived by CI); the smoke configuration is selected with
//! `P2B_SCALE=quick`, and `--pool`/`--select` run only their part. Run with:
//!
//! ```sh
//! cargo run --release -p p2b-bench --bin throughput
//! P2B_SCALE=full cargo run --release -p p2b-bench --bin throughput
//! P2B_SCALE=quick cargo run --release -p p2b-bench --bin throughput -- --pool
//! P2B_SCALE=quick cargo run --release -p p2b-bench --bin throughput -- --select
//! ```

use p2b_bandit::{
    ContextualPolicy, F32Scorer, LinUcb, LinUcbConfig, SelectScratch, SelectScratchF32,
};
use p2b_bench::Scale;
use p2b_core::{AgentPool, AgentPoolConfig, CentralServer, P2bConfig, P2bSystem};
use p2b_encoding::{Encoder, KMeansConfig, KMeansEncoder};
use p2b_linalg::Vector;
use p2b_shuffler::{
    EncodedReport, RawReport, ShuffledBatch, Shuffler, ShufflerConfig, ShufflerEngine,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Producer threads submitting concurrently in every configuration.
const PRODUCERS: usize = 8;
/// Distinct encoded context codes in the synthetic stream.
const CODES: usize = 64;
/// Actions in the synthetic stream.
const ACTIONS: usize = 10;
/// Crowd-blending threshold (the paper's default `l`).
const THRESHOLD: usize = 10;
/// Context dimension of the ingest benchmark's central model.
const DIMENSION: usize = 16;

fn producer_stream(producer: usize, reports: usize) -> Vec<RawReport> {
    let mut rng = StdRng::seed_from_u64(producer as u64 + 1);
    (0..reports)
        .map(|i| {
            let code = rng.gen_range(0..CODES);
            let action = rng.gen_range(0..ACTIONS);
            RawReport::with_timestamp(
                format!("producer-{producer}"),
                i as u64,
                EncodedReport::new(code, action, f64::from(rng.gen_range(0..2u8)))
                    .expect("rewards 0/1 are valid"),
            )
        })
        .collect()
}

/// One measured configuration, serialized into `BENCH_ingest.json`.
#[derive(Debug, Serialize)]
struct BenchRecord {
    /// `"engine"` (part 1) or `"ingest"` (part 2).
    stage: String,
    /// `"sharded"` for the engine, `"sequential"`/`"coalesced"` for ingest.
    mode: String,
    shards: usize,
    batch_size: usize,
    reports: usize,
    batches: usize,
    wall_secs: f64,
    reports_per_sec: f64,
    /// Speedup over the stage's single-threaded baseline.
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct BenchOutput {
    scale: String,
    hardware_threads: usize,
    /// Mean reports per distinct `(code, action)` pair in the ingest stream
    /// — the code-reuse factor the coalescer exploits.
    ingest_code_reuse: f64,
    records: Vec<BenchRecord>,
}

struct RunResult {
    shards: usize,
    wall_secs: f64,
    reports_per_sec: f64,
    batches: usize,
    released: usize,
}

fn run_engine(shards: usize, streams: &[Vec<RawReport>], batch_size: usize) -> RunResult {
    let engine = ShufflerEngine::builder(ShufflerConfig::new(THRESHOLD))
        .shards(shards)
        .batch_size(batch_size)
        .shard_queue_capacity(batch_size)
        .build()
        .expect("static configuration is valid");
    let total: usize = streams.iter().map(Vec::len).sum();

    let start = Instant::now();
    let handle = engine.spawn(42);
    std::thread::scope(|scope| {
        for stream in streams {
            let handle_ref = &handle;
            scope.spawn(move || {
                for report in stream.iter().cloned() {
                    handle_ref
                        .submit(report)
                        .expect("engine stays open during the run");
                }
            });
        }
    });
    let output = handle.finish();
    let wall_secs = start.elapsed().as_secs_f64();

    let received: usize = output
        .batches
        .iter()
        .map(|b| b.batch.stats().received)
        .sum();
    assert_eq!(received, total, "the engine must conserve every report");
    RunResult {
        shards,
        wall_secs,
        reports_per_sec: total as f64 / wall_secs,
        batches: output.batches.len(),
        released: output
            .batches
            .iter()
            .map(|b| b.batch.stats().released)
            .sum(),
    }
}

/// Fits the k-means encoder the ingest benchmark's server validates against.
fn fit_encoder() -> Arc<dyn Encoder> {
    let mut rng = StdRng::seed_from_u64(7);
    let corpus: Vec<Vector> = (0..CODES * 8)
        .map(|i| {
            let mut raw = vec![0.05; DIMENSION];
            raw[i % DIMENSION] = 1.0 + 0.05 * ((i / DIMENSION) % 7) as f64;
            raw[(i / 3) % DIMENSION] += 0.25;
            Vector::from(raw).normalized_l1().expect("non-empty")
        })
        .collect();
    Arc::new(
        KMeansEncoder::fit(
            &corpus,
            KMeansConfig::new(CODES).with_iterations(10),
            &mut rng,
        )
        .expect("corpus is larger than k"),
    )
}

/// Builds the shuffled batches every ingest configuration replays: heavy
/// `(code, action)` reuse, exactly like post-threshold production batches.
fn ingest_batches(num_codes: usize, batch_size: usize, batches: usize) -> Vec<ShuffledBatch> {
    let shuffler = Shuffler::new(ShufflerConfig::new(1)).expect("threshold 1 is valid");
    let mut rng = StdRng::seed_from_u64(99);
    (0..batches)
        .map(|b| {
            let raw: Vec<RawReport> = (0..batch_size)
                .map(|i| {
                    let code = rng.gen_range(0..num_codes);
                    let action = rng.gen_range(0..ACTIONS);
                    RawReport::with_timestamp(
                        format!("b{b}"),
                        i as u64,
                        EncodedReport::new(code, action, f64::from(rng.gen_range(0..2u8)))
                            .expect("rewards 0/1 are valid"),
                    )
                })
                .collect();
            shuffler.process(raw, &mut rng)
        })
        .collect()
}

enum IngestMode {
    Sequential,
    Coalesced { ingest_shards: usize },
}

fn run_ingest(mode: &IngestMode, encoder: &Arc<dyn Encoder>, batches: &[ShuffledBatch]) -> f64 {
    let shards = match mode {
        IngestMode::Sequential => 1,
        IngestMode::Coalesced { ingest_shards } => *ingest_shards,
    };
    let config = P2bConfig::new(DIMENSION, ACTIONS).with_ingest_shards(shards);
    let mut server =
        CentralServer::new(&config, Arc::clone(encoder)).expect("static configuration is valid");
    let start = Instant::now();
    let mut accepted = 0u64;
    for batch in batches {
        accepted += match mode {
            IngestMode::Sequential => server.ingest_batch(batch),
            IngestMode::Coalesced { .. } => server.ingest_batch_coalesced(batch),
        }
        .expect("well-formed batches ingest cleanly");
    }
    // Synchronize with the ingest shards: assembling the model waits for
    // every dispatched update to be folded, so the timing covers the work.
    let model = server.model().expect("assembly succeeds");
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(model.observations(), accepted, "no update may be lost");
    wall
}

/// One measured pool configuration, serialized into `BENCH_pool.json`.
#[derive(Debug, Serialize)]
struct PoolBenchRecord {
    /// `"bounded"` or `"unbounded"`.
    mode: String,
    /// Residency budget (0 = unbounded).
    budget: usize,
    shards: usize,
    ops: usize,
    wall_secs: f64,
    ops_per_sec: f64,
    evictions: u64,
    rehydrations: u64,
    hit_rate: f64,
    max_resident: usize,
    /// Peak approximate bytes of model state owned by resident agents.
    peak_resident_model_bytes: usize,
    /// Speedup over the unbounded single-shard baseline.
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct PoolBenchOutput {
    scale: String,
    hardware_threads: usize,
    codes: usize,
    hot_fraction: f64,
    records: Vec<PoolBenchRecord>,
}

/// A skewed key stream: `hot_share` of the traffic lands on the first
/// `hot_fraction` of the code space — the regime where a small residency
/// budget still serves most checkouts warm.
fn pool_key_stream(ops: usize, codes: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(17);
    let hot_codes = (codes / 5).max(1);
    (0..ops)
        .map(|_| {
            if rng.gen::<f64>() < 0.8 {
                rng.gen_range(0..hot_codes) as u64
            } else {
                rng.gen_range(hot_codes..codes) as u64
            }
        })
        .collect()
}

fn pool_system() -> P2bSystem {
    let config = P2bConfig::new(DIMENSION, ACTIONS).with_local_interactions(4);
    P2bSystem::new(config, fit_encoder()).expect("static configuration is valid")
}

struct PoolRun {
    wall_secs: f64,
    evictions: u64,
    rehydrations: u64,
    hit_rate: f64,
    max_resident: usize,
    peak_bytes: usize,
}

/// Drives one pool configuration over the key stream: every operation is a
/// checkout + selection + local reward fold + checkin; reports funneled
/// through the pool are drained (and dropped) every 1024 operations, like a
/// serving loop handing them to the shuffler engine.
fn run_pool(budget: Option<usize>, shards: usize, keys: &[u64]) -> PoolRun {
    let mut system = pool_system();
    let mut pool = AgentPool::new(AgentPoolConfig {
        max_resident_agents: budget,
        shards,
    })
    .expect("static configuration is valid");
    let mut rng = StdRng::seed_from_u64(23);
    let context = Vector::filled(DIMENSION, 1.0 / DIMENSION as f64);
    let mut max_resident = 0usize;
    let mut peak_bytes = 0usize;
    let start = Instant::now();
    for (i, &key) in keys.iter().enumerate() {
        pool.with_agent(&mut system, key, |agent| {
            let action = agent.select_action(&context, &mut rng)?;
            agent.observe_reward(&context, action, 1.0, &mut rng)
        })
        .expect("pool operations succeed");
        if i % 1024 == 0 {
            max_resident = max_resident.max(pool.resident_agents());
            peak_bytes = peak_bytes.max(pool.approx_model_bytes().0);
            let _ = pool.drain_reports();
        }
    }
    max_resident = max_resident.max(pool.resident_agents());
    peak_bytes = peak_bytes.max(pool.approx_model_bytes().0);
    let wall_secs = start.elapsed().as_secs_f64();
    if let Some(budget) = budget {
        assert!(
            max_resident <= budget,
            "memory ceiling violated: {max_resident} resident > budget {budget}"
        );
    }
    let stats = pool.stats();
    PoolRun {
        wall_secs,
        evictions: stats.evictions,
        rehydrations: stats.rehydrations,
        hit_rate: stats.hits as f64 / (stats.hits + stats.misses()).max(1) as f64,
        max_resident,
        peak_bytes,
    }
}

fn run_pool_part(scale: Scale, cores: usize) {
    let ops = scale.pick(20_000, 100_000, 400_000);
    let keys = pool_key_stream(ops, CODES);
    println!("\nBounded-memory agent pool: checkout/interact/checkin throughput");
    println!(
        "{ops} operations over {CODES} context codes (80% of traffic on 20% of codes), \
         d = {DIMENSION}, {ACTIONS} actions"
    );
    println!(
        "\n{:>10} {:>7} {:>7} {:>10} {:>12} {:>9} {:>8} {:>9} {:>12} {:>8}",
        "mode",
        "budget",
        "shards",
        "wall (ms)",
        "ops/s",
        "evict",
        "rehydr",
        "hit rate",
        "peak bytes",
        "speedup"
    );
    let mut records = Vec::new();
    let mut baseline = None;
    let configurations: [(Option<usize>, usize); 7] = [
        (None, 1),
        (None, 4),
        (Some(CODES / 2), 1),
        (Some(CODES / 8), 1),
        (Some(CODES / 8), 2),
        (Some(CODES / 8), 4),
        (Some(4), 1),
    ];
    for (budget, shards) in configurations {
        let run = run_pool(budget, shards, &keys);
        let rate = ops as f64 / run.wall_secs;
        let baseline_rate = *baseline.get_or_insert(rate);
        let speedup = rate / baseline_rate;
        let mode = if budget.is_some() {
            "bounded"
        } else {
            "unbounded"
        };
        println!(
            "{:>10} {:>7} {:>7} {:>10.1} {:>12.0} {:>9} {:>8} {:>8.1}% {:>12} {:>7.2}x",
            mode,
            budget.unwrap_or(0),
            shards,
            run.wall_secs * 1e3,
            rate,
            run.evictions,
            run.rehydrations,
            run.hit_rate * 100.0,
            run.peak_bytes,
            speedup
        );
        records.push(PoolBenchRecord {
            mode: mode.to_owned(),
            budget: budget.unwrap_or(0),
            shards,
            ops,
            wall_secs: run.wall_secs,
            ops_per_sec: rate,
            evictions: run.evictions,
            rehydrations: run.rehydrations,
            hit_rate: run.hit_rate,
            max_resident: run.max_resident,
            peak_resident_model_bytes: run.peak_bytes,
            speedup,
        });
    }
    let output = PoolBenchOutput {
        scale: format!("{scale:?}").to_lowercase(),
        hardware_threads: cores,
        codes: CODES,
        hot_fraction: 0.2,
        records,
    };
    let json = serde_json::to_string_pretty(&output).expect("records serialize");
    std::fs::write("BENCH_pool.json", json).expect("benchmark artifact is writable");
    println!("machine-readable results written to BENCH_pool.json");
}

/// One measured scoring path at one model shape, serialized into
/// `BENCH_select.json`.
#[derive(Debug, Serialize)]
struct SelectBenchRecord {
    /// `"reference"`, `"arena_f64"` or `"arena_f32"`.
    path: String,
    dimension: usize,
    actions: usize,
    selects: usize,
    wall_secs: f64,
    ns_per_select: f64,
    /// Speedup over the scalar reference path at the same shape.
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct SelectBenchOutput {
    scale: String,
    hardware_threads: usize,
    /// Best arena-f64 speedup over the scalar reference across shapes.
    best_speedup_f64: f64,
    /// Best f32-tier speedup over the scalar reference across shapes.
    best_speedup_f32: f64,
    records: Vec<SelectBenchRecord>,
}

fn select_context(dimension: usize, rng: &mut StdRng) -> Vector {
    let raw: Vec<f64> = (0..dimension).map(|_| rng.gen_range(0.0f64..1.0)).collect();
    Vector::from(raw).normalized_l1().expect("non-empty")
}

/// Pre-trains a model so every path scores non-trivial statistics.
fn select_model(dimension: usize, actions: usize, rounds: usize) -> LinUcb {
    let mut rng = StdRng::seed_from_u64(dimension as u64 * 31 + actions as u64);
    let mut policy = LinUcb::new(LinUcbConfig::new(dimension, actions)).expect("shape is valid");
    for _ in 0..rounds {
        let ctx = select_context(dimension, &mut rng);
        let action = policy
            .select_action(&ctx, &mut rng)
            .expect("context is well-formed");
        policy
            .update(&ctx, action, f64::from(rng.gen_range(0..2u8)))
            .expect("context is well-formed");
    }
    policy
}

/// Times `selects` single decisions over a cycled context set; returns the
/// wall time and the sum of chosen action indices (the correctness sink —
/// paths that must agree bit-for-bit must produce the same sum).
fn time_selects<F>(contexts: &[Vector], selects: usize, mut select_one: F) -> (f64, u64)
where
    F: FnMut(&Vector) -> usize,
{
    let mut sink = 0u64;
    let start = Instant::now();
    for i in 0..selects {
        let ctx = std::hint::black_box(&contexts[i % contexts.len()]);
        sink = sink.wrapping_add(select_one(ctx) as u64);
    }
    (start.elapsed().as_secs_f64(), std::hint::black_box(sink))
}

fn run_select_part(scale: Scale, cores: usize) {
    let shapes: [(usize, usize); 3] = [(10, 10), (16, 50), (32, 100)];
    let rounds = scale.pick(200, 500, 1_000);
    let selects = scale.pick(5_000, 50_000, 200_000);
    let distinct_contexts = 64usize;

    println!("\nSingle-decision LinUCB select throughput: scalar reference vs flat arena");
    println!(
        "{selects} selects per path over {distinct_contexts} contexts, \
         models pre-trained for {rounds} rounds"
    );
    println!(
        "\n{:>10} {:>5} {:>8} {:>10} {:>12} {:>12} {:>9}",
        "path", "d", "actions", "wall (ms)", "ns/select", "selects/s", "speedup"
    );

    let mut records = Vec::new();
    let mut best_f64 = 0.0f64;
    let mut best_f32 = 0.0f64;
    for (dimension, actions) in shapes {
        let policy = select_model(dimension, actions, rounds);
        let scorer = F32Scorer::new(&policy);
        let mut ctx_rng = StdRng::seed_from_u64(13);
        let contexts: Vec<Vector> = (0..distinct_contexts)
            .map(|_| select_context(dimension, &mut ctx_rng))
            .collect();
        // Warm-up pass per path so page-cache/branch-predictor effects do
        // not favor the later configurations.
        let warmup = (selects / 10).max(1);

        let mut rng = StdRng::seed_from_u64(5);
        let _ = time_selects(&contexts, warmup, |ctx| {
            policy
                .select_action_reference(ctx, &mut rng)
                .expect("context is well-formed")
                .index()
        });
        let mut rng = StdRng::seed_from_u64(5);
        let (ref_wall, ref_sink) = time_selects(&contexts, selects, |ctx| {
            policy
                .select_action_reference(ctx, &mut rng)
                .expect("context is well-formed")
                .index()
        });

        let mut scratch = SelectScratch::new();
        let mut rng = StdRng::seed_from_u64(5);
        let _ = time_selects(&contexts, warmup, |ctx| {
            policy
                .select_action_with(ctx, &mut rng, &mut scratch)
                .expect("context is well-formed")
                .index()
        });
        let mut rng = StdRng::seed_from_u64(5);
        let (f64_wall, f64_sink) = time_selects(&contexts, selects, |ctx| {
            policy
                .select_action_with(ctx, &mut rng, &mut scratch)
                .expect("context is well-formed")
                .index()
        });
        // The arena path is bit-identical to the reference: same seeds must
        // give the same action stream.
        assert_eq!(
            ref_sink, f64_sink,
            "arena f64 path diverged from the scalar reference (d={dimension}, a={actions})"
        );

        let mut scratch32 = SelectScratchF32::new();
        let mut rng = StdRng::seed_from_u64(5);
        let _ = time_selects(&contexts, warmup, |ctx| {
            scorer
                .select_action_with(ctx, &mut rng, &mut scratch32)
                .expect("context is well-formed")
                .index()
        });
        let mut rng = StdRng::seed_from_u64(5);
        let (f32_wall, _) = time_selects(&contexts, selects, |ctx| {
            scorer
                .select_action_with(ctx, &mut rng, &mut scratch32)
                .expect("context is well-formed")
                .index()
        });

        for (path, wall) in [
            ("reference", ref_wall),
            ("arena_f64", f64_wall),
            ("arena_f32", f32_wall),
        ] {
            let speedup = ref_wall / wall;
            println!(
                "{:>10} {:>5} {:>8} {:>10.1} {:>12.1} {:>12.0} {:>8.2}x",
                path,
                dimension,
                actions,
                wall * 1e3,
                wall * 1e9 / selects as f64,
                selects as f64 / wall,
                speedup
            );
            match path {
                "arena_f64" => best_f64 = best_f64.max(speedup),
                "arena_f32" => best_f32 = best_f32.max(speedup),
                _ => {}
            }
            records.push(SelectBenchRecord {
                path: path.to_owned(),
                dimension,
                actions,
                selects,
                wall_secs: wall,
                ns_per_select: wall * 1e9 / selects as f64,
                speedup,
            });
        }
    }

    println!(
        "\nbest select speedup over the scalar reference: \
         {best_f64:.2}x (f64 arena), {best_f32:.2}x (f32 tier)"
    );
    // The speedup bar CI's smoke job enforces. The arena removes the
    // per-arm allocations and the redundant θ solve, so even the quick
    // scale clears this with a wide margin on any hardware; the acceptance
    // target (≥ 5× at the wide shapes) is recorded in the JSON artifact.
    assert!(
        best_f64.max(best_f32) >= 2.0,
        "select fast path regressed below the 2x floor over the scalar reference"
    );

    let output = SelectBenchOutput {
        scale: format!("{scale:?}").to_lowercase(),
        hardware_threads: cores,
        best_speedup_f64: best_f64,
        best_speedup_f32: best_f32,
        records,
    };
    let json = serde_json::to_string_pretty(&output).expect("records serialize");
    std::fs::write("BENCH_select.json", json).expect("benchmark artifact is writable");
    println!("machine-readable results written to BENCH_select.json");
}

fn main() {
    let scale = Scale::from_env();
    let pool_only = std::env::args().any(|a| a == "--pool");
    let select_only = std::env::args().any(|a| a == "--select");
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    if pool_only {
        run_pool_part(scale, cores);
        return;
    }
    if select_only {
        run_select_part(scale, cores);
        return;
    }
    let mut records = Vec::new();

    // ── Part 1: shuffler-engine shard scaling ────────────────────────────
    let per_producer = scale.pick(5_000, 50_000, 250_000);
    let batch_size = scale.pick(1_024, 4_096, 8_192);
    let total = per_producer * PRODUCERS;

    println!("Sharded shuffler engine throughput");
    println!(
        "{total} reports, {PRODUCERS} producers, batch size {batch_size}, \
         threshold {THRESHOLD}, {cores} hardware threads"
    );
    if cores < 4 {
        println!("warning: fewer than 4 hardware threads; shard scaling will not show here");
    }

    let streams: Vec<Vec<RawReport>> = (0..PRODUCERS)
        .map(|p| producer_stream(p, per_producer))
        .collect();

    // Warm-up pass so allocator and page-cache effects do not favor the
    // later (multi-shard) runs.
    let _ = run_engine(1, &streams, batch_size);

    println!(
        "\n{:>7} {:>10} {:>14} {:>9} {:>10} {:>9}",
        "shards", "wall (ms)", "reports/s", "batches", "released", "speedup"
    );
    let mut baseline = None;
    for shards in [1usize, 2, 4, 8] {
        let result = run_engine(shards, &streams, batch_size);
        let baseline_rate = *baseline.get_or_insert(result.reports_per_sec);
        let speedup = result.reports_per_sec / baseline_rate;
        println!(
            "{:>7} {:>10.1} {:>14.0} {:>9} {:>10} {:>8.2}x",
            result.shards,
            result.wall_secs * 1e3,
            result.reports_per_sec,
            result.batches,
            result.released,
            speedup
        );
        records.push(BenchRecord {
            stage: "engine".to_owned(),
            mode: "sharded".to_owned(),
            shards: result.shards,
            batch_size,
            reports: total,
            batches: result.batches,
            wall_secs: result.wall_secs,
            reports_per_sec: result.reports_per_sec,
            speedup,
        });
    }

    // ── Part 2: central-model ingest scaling ─────────────────────────────
    // Pair space sized for ≥ 10× reuse per batch — the post-threshold regime
    // (every released code appears ≥ l = 10 times by construction).
    let ingest_batch_size = scale.pick(512, 2_048, 8_192);
    let ingest_batch_count = scale.pick(8, 16, 32);
    let ingest_codes = scale.pick(4, 16, CODES);
    let ingest_total = ingest_batch_size * ingest_batch_count;
    let reuse = ingest_batch_size as f64 / (ingest_codes * ACTIONS) as f64;
    println!("\nCentral-model ingestion: sequential vs coalesced sufficient statistics");
    println!(
        "{ingest_total} reports in {ingest_batch_count} batches of {ingest_batch_size}, \
         {ingest_codes} codes x {ACTIONS} actions (~{reuse:.0}x reuse per batch), d = {DIMENSION}"
    );

    let encoder = fit_encoder();
    let batches = ingest_batches(ingest_codes, ingest_batch_size, ingest_batch_count);
    // Warm-up.
    let _ = run_ingest(
        &IngestMode::Sequential,
        &encoder,
        &batches[..1.min(batches.len())],
    );

    let modes: [(&str, IngestMode); 4] = [
        ("sequential", IngestMode::Sequential),
        ("coalesced", IngestMode::Coalesced { ingest_shards: 1 }),
        ("coalesced", IngestMode::Coalesced { ingest_shards: 2 }),
        ("coalesced", IngestMode::Coalesced { ingest_shards: 4 }),
    ];
    println!(
        "\n{:>12} {:>7} {:>10} {:>14} {:>9}",
        "mode", "shards", "wall (ms)", "reports/s", "speedup"
    );
    let mut ingest_baseline = None;
    for (name, mode) in &modes {
        let wall_secs = run_ingest(mode, &encoder, &batches);
        let rate = ingest_total as f64 / wall_secs;
        let baseline_rate = *ingest_baseline.get_or_insert(rate);
        let speedup = rate / baseline_rate;
        let shards = match mode {
            IngestMode::Sequential => 1,
            IngestMode::Coalesced { ingest_shards } => *ingest_shards,
        };
        println!(
            "{:>12} {:>7} {:>10.1} {:>14.0} {:>8.2}x",
            name,
            shards,
            wall_secs * 1e3,
            rate,
            speedup
        );
        records.push(BenchRecord {
            stage: "ingest".to_owned(),
            mode: (*name).to_owned(),
            shards,
            batch_size: ingest_batch_size,
            reports: ingest_total,
            batches: ingest_batch_count,
            wall_secs,
            reports_per_sec: rate,
            speedup,
        });
    }

    let coalesced_best = records
        .iter()
        .filter(|r| r.stage == "ingest" && r.mode == "coalesced")
        .map(|r| r.speedup)
        .fold(0.0f64, f64::max);
    println!(
        "\nbest coalesced ingest speedup over sequential per-report ingestion: \
         {coalesced_best:.2}x"
    );

    let output = BenchOutput {
        scale: format!("{scale:?}").to_lowercase(),
        hardware_threads: cores,
        ingest_code_reuse: reuse,
        records,
    };
    let json = serde_json::to_string_pretty(&output).expect("records serialize");
    std::fs::write("BENCH_ingest.json", json).expect("benchmark artifact is writable");
    println!("machine-readable results written to BENCH_ingest.json");

    // ── Part 3: bounded-memory agent-pool serving ────────────────────────
    run_pool_part(scale, cores);

    // ── Part 4: single-decision select throughput ────────────────────────
    run_select_part(scale, cores);
}
