//! Deprecated serving-path throughput entry point.
//!
//! The three ad-hoc parts this binary used to run — shuffler-engine shard
//! scaling + central-model ingest scaling, bounded agent-pool serving, and
//! single-decision LinUCB select throughput — are now modes of the
//! `p2b-serve` harness (`--mode ingest|pool|select`), driven by the shared
//! skewed arrival process. This shim keeps the historical flags working:
//!
//! * `throughput --pool`   → `p2b-serve --mode pool`
//! * `throughput --select` → `p2b-serve --mode select`
//! * `throughput`          → the historical default sequence
//!   (engine+ingest, then pool, then select)
//!
//! Output artifacts (`BENCH_ingest.json`, `BENCH_pool.json`,
//! `BENCH_select.json`) are unchanged. New callers should invoke
//! `p2b-serve` directly; `--mode full` adds the closed-loop service with
//! latency SLOs that this binary never had.

use p2b_bench::serve::{legacy_throughput_modes, run_ingest_mode, run_pool_mode, run_select_mode};
use p2b_bench::{Scale, ServeMode};
use std::process::ExitCode;

fn main() -> ExitCode {
    eprintln!(
        "note: `throughput` is deprecated; use `p2b-serve --mode \
         ingest|pool|select|full` (same artifacts, plus the closed loop)"
    );
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_env();
    for mode in legacy_throughput_modes(&args) {
        match mode {
            ServeMode::Ingest => {
                if let Err(failure) = run_ingest_mode(scale) {
                    return failure.report("throughput");
                }
            }
            ServeMode::Pool => run_pool_mode(scale),
            ServeMode::Select => run_select_mode(scale),
            ServeMode::Full => unreachable!("the legacy mapping never yields Full"),
        }
    }
    ExitCode::SUCCESS
}
