//! Typed failure categories for the bench binaries, each mapped to a
//! distinct nonzero exit code.
//!
//! The harness binaries (`p2b-serve`, `figures`) are run by CI jobs and by
//! scripted sweeps that branch on *why* a run failed: a violated latency
//! SLO means "the machine was slow or the code regressed", a violated
//! determinism or accounting invariant means "the reproduction is wrong",
//! and an unwritable artifact means "the environment is broken". Folding
//! all three into `exit 1` (or, worse, a panic backtrace) makes those
//! scripts guess from stderr. Every failure therefore carries one
//! diagnostic line and maps to its own exit code via
//! [`BenchFailure::exit_code`]; the mapping is pinned by unit test and
//! `0`/`1` are left to "success" and the generic platform failure.

use std::fmt;
use std::process::ExitCode;

/// Why a bench binary is exiting nonzero. Each variant carries the one-line
/// diagnostic the binary prints to stderr (no backtraces on expected
/// failure paths) and maps to a distinct exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BenchFailure {
    /// The command line could not be parsed (unknown flag, missing value).
    Usage(String),
    /// The experiment or simulation itself failed to run.
    Runtime(String),
    /// A result artifact could not be written.
    Io(String),
    /// A latency/throughput service-level objective was violated.
    SloViolation(String),
    /// A determinism or privacy-accounting invariant failed — digests
    /// diverged across shard counts, a guarantee went missing, or an
    /// accounting bound did not hold.
    InvariantViolation(String),
}

impl BenchFailure {
    /// The exit code of this failure category: distinct, nonzero, and
    /// stable (scripts branch on these).
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        match self {
            BenchFailure::Usage(_) => 2,
            BenchFailure::Runtime(_) => 3,
            BenchFailure::Io(_) => 4,
            BenchFailure::SloViolation(_) => 5,
            BenchFailure::InvariantViolation(_) => 6,
        }
    }

    /// Prints the one-line diagnostic to stderr (prefixed with the binary
    /// name) and returns the mapped [`ExitCode`] — the single exit path of
    /// the bench binaries' failure branches.
    #[must_use]
    pub fn report(&self, binary: &str) -> ExitCode {
        eprintln!("{binary}: {self}");
        ExitCode::from(self.exit_code())
    }
}

impl fmt::Display for BenchFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchFailure::Usage(m) => write!(f, "usage error: {m}"),
            BenchFailure::Runtime(m) => write!(f, "runtime failure: {m}"),
            BenchFailure::Io(m) => write!(f, "cannot write artifact: {m}"),
            BenchFailure::SloViolation(m) => write!(f, "SLO violation: {m}"),
            BenchFailure::InvariantViolation(m) => write!(f, "invariant violation: {m}"),
        }
    }
}

impl std::error::Error for BenchFailure {}

#[cfg(test)]
mod tests {
    use super::*;

    fn all() -> [BenchFailure; 5] {
        [
            BenchFailure::Usage("u".into()),
            BenchFailure::Runtime("r".into()),
            BenchFailure::Io("i".into()),
            BenchFailure::SloViolation("s".into()),
            BenchFailure::InvariantViolation("v".into()),
        ]
    }

    #[test]
    fn exit_codes_are_distinct_nonzero_and_pinned() {
        let codes: Vec<u8> = all().iter().map(BenchFailure::exit_code).collect();
        // Pinned values: scripts and CI branch on these.
        assert_eq!(codes, vec![2, 3, 4, 5, 6]);
        let unique: std::collections::HashSet<u8> = codes.iter().copied().collect();
        assert_eq!(unique.len(), codes.len(), "codes must be distinct");
        assert!(codes.iter().all(|&c| c != 0), "codes must be nonzero");
        assert!(
            codes.iter().all(|&c| c != 1),
            "1 is reserved for generic platform failure"
        );
    }

    #[test]
    fn diagnostics_are_one_line() {
        for failure in all() {
            let line = failure.to_string();
            assert!(!line.contains('\n'), "multi-line diagnostic: {line:?}");
            assert!(!line.is_empty());
        }
        assert_eq!(
            BenchFailure::SloViolation("p99 over budget".into()).to_string(),
            "SLO violation: p99 over budget"
        );
    }
}
