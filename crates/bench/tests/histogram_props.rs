//! Property suite for the mergeable log-bucket latency histogram.
//!
//! The serve harness records latencies on per-worker histograms and merges
//! them afterward, so correctness of the merged digest rests on three
//! properties pinned here: merge is associative and commutative, recording
//! order is irrelevant, and quantiles stay within one bucket of the exact
//! sorted-sample quantiles.

use p2b_bench::{bucket_of, LatencyHistogram};
use proptest::prelude::*;

fn histogram_of(samples: &[u64]) -> LatencyHistogram {
    let mut hist = LatencyHistogram::new();
    for &s in samples {
        hist.record(s);
    }
    hist
}

/// Samples spanning the interesting ranges: sub-octave exact buckets,
/// mid-range, and huge values near the top of `u64`.
fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            0u64..64,
            64u64..1_000_000,
            1_000_000u64..u64::MAX / 2,
            (u64::MAX - 1_000)..u64::MAX,
        ],
        0..200,
    )
}

/// Exact nearest-rank quantile of a sorted sample set.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = (q * (sorted.len() - 1) as f64).floor() as usize;
    sorted[rank]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// merge(a, b) == merge(b, a): per-worker merge order cannot change the
    /// digest.
    #[test]
    fn merge_is_commutative(a in arb_samples(), b in arb_samples()) {
        let (ha, hb) = (histogram_of(&a), histogram_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    /// (a ∪ b) ∪ c == a ∪ (b ∪ c): merge grouping cannot change the digest.
    #[test]
    fn merge_is_associative(
        a in arb_samples(),
        b in arb_samples(),
        c in arb_samples(),
    ) {
        let (ha, hb, hc) = (histogram_of(&a), histogram_of(&b), histogram_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut right_inner = hb.clone();
        right_inner.merge(&hc);
        let mut right = ha.clone();
        right.merge(&right_inner);
        prop_assert_eq!(left, right);
    }

    /// Merging per-worker histograms is lossless: identical to one histogram
    /// that recorded every sample itself, however the samples are split.
    #[test]
    fn merge_equals_single_recorder(samples in arb_samples(), split in 0usize..200) {
        let split = split.min(samples.len());
        let mut merged = histogram_of(&samples[..split]);
        merged.merge(&histogram_of(&samples[split..]));
        prop_assert_eq!(merged, histogram_of(&samples));
    }

    /// Recording order is irrelevant: the histogram of a permuted stream is
    /// identical to the histogram of the sorted stream.
    #[test]
    fn recording_is_order_invariant(samples in arb_samples()) {
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        prop_assert_eq!(histogram_of(&samples), histogram_of(&sorted));
    }

    /// Reported quantiles land in exactly the bucket of the true
    /// nearest-rank quantile, never above it, and within one sub-bucket
    /// (≤ 1/32 relative + 1) below it.
    #[test]
    fn quantiles_are_within_one_bucket_of_exact(samples in arb_samples()) {
        prop_assume!(!samples.is_empty());
        let hist = histogram_of(&samples);
        let mut sorted = samples;
        sorted.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let reported = hist.quantile(q);
            prop_assert_eq!(
                bucket_of(reported), bucket_of(exact),
                "q={}: reported {} vs exact {}", q, reported, exact
            );
            prop_assert!(reported <= exact, "q={}: {} > exact {}", q, reported, exact);
            let max_err = exact as f64 / 32.0 + 1.0;
            prop_assert!(
                (exact - reported) as f64 <= max_err,
                "q={}: error {} above bound {}", q, exact - reported, max_err
            );
        }
    }

    /// count/min/max/mean agree exactly with the recorded stream.
    #[test]
    fn side_stats_are_exact(samples in arb_samples()) {
        prop_assume!(!samples.is_empty());
        let hist = histogram_of(&samples);
        prop_assert_eq!(hist.count(), samples.len() as u64);
        prop_assert_eq!(hist.min(), *samples.iter().min().unwrap());
        prop_assert_eq!(hist.max(), *samples.iter().max().unwrap());
        let exact_mean =
            samples.iter().map(|&v| v as f64).sum::<f64>() / samples.len() as f64;
        // Both sides sum in extended precision, so agreement is tight.
        let scale = exact_mean.abs().max(1.0);
        prop_assert!((hist.mean() - exact_mean).abs() / scale < 1e-9);
    }
}
