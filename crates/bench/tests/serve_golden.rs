//! Golden pin of the `BENCH_serve.json` schema and the harness's
//! deterministic summary.
//!
//! The golden file `tests/golden/tiny_serve.json` holds the *redacted*
//! report of [`ServeConfig::tiny`]: full schema (so field renames and
//! layout changes surface in review) with every wall-clock-derived and
//! worker-partition-dependent field zeroed (so the comparison is stable on
//! any machine). Regenerate deliberately with:
//!
//! ```text
//! P2B_REGENERATE_GOLDEN=1 cargo test -p p2b-bench --test serve_golden
//! ```
//!
//! The suite also pins the two determinism contracts directly: the same
//! configuration must produce a byte-identical redacted report across runs,
//! and the deterministic summary must not change with the worker count.

use p2b_bench::serve::{run_full, ServeConfig, SloConfig};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("tiny_serve.json")
}

fn tiny_redacted_json(workers: usize) -> String {
    let mut config = ServeConfig::tiny();
    config.workers = workers;
    let slo = SloConfig::for_config(&config);
    let report = run_full(&config, &slo, "tiny");
    assert!(
        report.slo.pass,
        "the tiny configuration must satisfy its own default SLOs: {:?}",
        report.slo.violations
    );
    serde_json::to_string_pretty(&report.redacted()).expect("reports serialize")
}

#[test]
fn tiny_report_matches_the_golden_file() {
    let actual = tiny_redacted_json(ServeConfig::tiny().workers);
    let path = golden_path();
    if std::env::var("P2B_REGENERATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("golden dir is creatable");
        std::fs::write(&path, &actual).expect("golden file is writable");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden file {}; run with P2B_REGENERATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "redacted serve report diverged from the golden file; if the change \
         is intentional, regenerate with P2B_REGENERATE_GOLDEN=1"
    );
}

#[test]
fn deterministic_summary_is_worker_count_invariant() {
    // The golden runs at tiny's default worker count; re-running at 1 and 3
    // workers must leave the redacted report — including every count in the
    // deterministic summary — byte-identical.
    let base = tiny_redacted_json(ServeConfig::tiny().workers);
    for workers in [1usize, 3] {
        assert_eq!(
            tiny_redacted_json(workers),
            base,
            "deterministic summary changed between worker counts \
             ({workers} vs {})",
            ServeConfig::tiny().workers
        );
    }
}

#[test]
fn repeated_runs_are_byte_identical() {
    assert_eq!(
        tiny_redacted_json(2),
        tiny_redacted_json(2),
        "two runs of the same configuration must produce byte-identical \
         redacted reports"
    );
}
