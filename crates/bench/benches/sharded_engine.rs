//! Criterion benchmark of the sharded shuffler engine across shard counts.
//!
//! Complements `src/bin/throughput.rs` (which prints a one-shot scaling
//! table) with statistically sampled end-to-end times: 4 producers submit a
//! fixed report stream, and one measurement covers spawn → submit → finish.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2b_shuffler::{EncodedReport, RawReport, ShufflerConfig, ShufflerEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PRODUCERS: usize = 4;
const REPORTS_PER_PRODUCER: usize = 5_000;

fn streams() -> Vec<Vec<RawReport>> {
    (0..PRODUCERS)
        .map(|producer| {
            let mut rng = StdRng::seed_from_u64(producer as u64 + 7);
            (0..REPORTS_PER_PRODUCER)
                .map(|i| {
                    RawReport::with_timestamp(
                        format!("producer-{producer}"),
                        i as u64,
                        EncodedReport::new(rng.gen_range(0..32), rng.gen_range(0..10), 1.0)
                            .unwrap(),
                    )
                })
                .collect()
        })
        .collect()
}

fn bench_shard_scaling(c: &mut Criterion) {
    let streams = streams();
    let mut group = c.benchmark_group("sharded_engine");
    group.sample_size(10);
    for &shards in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                let engine = ShufflerEngine::builder(ShufflerConfig::new(10))
                    .shards(shards)
                    .batch_size(2_048)
                    .build()
                    .unwrap();
                b.iter(|| {
                    let handle = engine.spawn(3);
                    std::thread::scope(|scope| {
                        for stream in &streams {
                            let handle_ref = &handle;
                            scope.spawn(move || {
                                for report in stream.iter().cloned() {
                                    handle_ref.submit(report).unwrap();
                                }
                            });
                        }
                    });
                    handle.finish()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_shard_scaling);
criterion_main!(benches);
