//! Micro-benchmarks of the shuffler: anonymize + shuffle + threshold over
//! batches of the size a deployment would accumulate between rounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2b_shuffler::{EncodedReport, RawReport, Shuffler, ShufflerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn batch(size: usize, codes: usize, rng: &mut StdRng) -> Vec<RawReport> {
    (0..size)
        .map(|i| {
            let code = rng.gen_range(0..codes);
            let action = rng.gen_range(0..40);
            RawReport::with_timestamp(
                format!("agent-{i}"),
                i as u64,
                EncodedReport::new(code, action, f64::from(rng.gen_range(0..2u8))).unwrap(),
            )
        })
        .collect()
}

fn bench_process(c: &mut Criterion) {
    let mut group = c.benchmark_group("shuffler_process");
    group.sample_size(20);
    for &size in &[1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let shuffler = Shuffler::new(ShufflerConfig::new(10)).unwrap();
            let mut rng = StdRng::seed_from_u64(4);
            b.iter_batched(
                || batch(size, 32, &mut rng),
                |reports| shuffler.process(reports, &mut StdRng::seed_from_u64(5)),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_process);
criterion_main!(benches);
