//! Micro-benchmarks of the three LinUCB scoring paths over identical
//! trained models:
//!
//! * `reference` — the historical per-arm scalar path (allocates two
//!   vectors per arm per decision), kept as the f64 source of truth;
//! * `arena_f64` — the flat element-major score arena with caller-provided
//!   scratch buffers (allocation-free, bit-identical to the reference);
//! * `arena_f32` — the derived single-precision scoring tier.
//!
//! The `throughput --select` binary measures the same three paths end to
//! end and records the speedups in `BENCH_select.json`; this bench gives
//! per-decision latencies under criterion's measurement loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2b_bandit::{
    ContextualPolicy, F32Scorer, LinUcb, LinUcbConfig, SelectScratch, SelectScratchF32,
};
use p2b_linalg::Vector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Model shapes spanning the paper's experiment grid: small frequent
/// decisions up to the wide-code regime.
const SHAPES: [(usize, usize); 3] = [(10usize, 10usize), (16, 50), (32, 100)];

fn random_context(dimension: usize, rng: &mut StdRng) -> Vector {
    let raw: Vec<f64> = (0..dimension).map(|_| rng.gen::<f64>()).collect();
    Vector::from(raw).normalized_l1().expect("non-empty")
}

/// Pre-trains a model so every path scores non-trivial statistics.
fn trained(dimension: usize, actions: usize) -> LinUcb {
    let mut rng = StdRng::seed_from_u64(dimension as u64 * 31 + actions as u64);
    let mut policy = LinUcb::new(LinUcbConfig::new(dimension, actions)).unwrap();
    for _ in 0..300 {
        let ctx = random_context(dimension, &mut rng);
        let action = policy.select_action(&ctx, &mut rng).unwrap();
        policy
            .update(&ctx, action, f64::from(rng.gen_range(0..2u8)))
            .unwrap();
    }
    policy
}

fn bench_select_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("select_reference");
    for &(dimension, actions) in &SHAPES {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("d{dimension}_a{actions}")),
            &(dimension, actions),
            |b, &(dimension, actions)| {
                let policy = trained(dimension, actions);
                let mut rng = StdRng::seed_from_u64(1);
                let ctx = random_context(dimension, &mut rng);
                b.iter(|| policy.select_action_reference(&ctx, &mut rng).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_select_arena_f64(c: &mut Criterion) {
    let mut group = c.benchmark_group("select_arena_f64");
    for &(dimension, actions) in &SHAPES {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("d{dimension}_a{actions}")),
            &(dimension, actions),
            |b, &(dimension, actions)| {
                let policy = trained(dimension, actions);
                let mut rng = StdRng::seed_from_u64(1);
                let ctx = random_context(dimension, &mut rng);
                let mut scratch = SelectScratch::new();
                b.iter(|| {
                    policy
                        .select_action_with(&ctx, &mut rng, &mut scratch)
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_select_arena_f32(c: &mut Criterion) {
    let mut group = c.benchmark_group("select_arena_f32");
    for &(dimension, actions) in &SHAPES {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("d{dimension}_a{actions}")),
            &(dimension, actions),
            |b, &(dimension, actions)| {
                let policy = trained(dimension, actions);
                let scorer = F32Scorer::new(&policy);
                let mut rng = StdRng::seed_from_u64(1);
                let ctx = random_context(dimension, &mut rng);
                let mut scratch = SelectScratchF32::new();
                b.iter(|| {
                    scorer
                        .select_action_with(&ctx, &mut rng, &mut scratch)
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_select_reference,
    bench_select_arena_f64,
    bench_select_arena_f32
);
criterion_main!(benches);
