//! Micro-benchmarks of the LinUCB hot path: action selection and model
//! updates at the dimensions used by the paper's experiments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2b_bandit::{ContextualPolicy, LinUcb, LinUcbConfig};
use p2b_linalg::Vector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_context(dimension: usize, rng: &mut StdRng) -> Vector {
    let raw: Vec<f64> = (0..dimension).map(|_| rng.gen::<f64>()).collect();
    Vector::from(raw).normalized_l1().expect("non-empty")
}

fn bench_select_action(c: &mut Criterion) {
    let mut group = c.benchmark_group("linucb_select_action");
    for &(dimension, actions) in &[(10usize, 10usize), (10, 50), (20, 20)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("d{dimension}_a{actions}")),
            &(dimension, actions),
            |b, &(dimension, actions)| {
                let mut rng = StdRng::seed_from_u64(1);
                let mut policy = LinUcb::new(LinUcbConfig::new(dimension, actions)).unwrap();
                // Pre-train so the benchmark measures the steady state.
                for _ in 0..200 {
                    let ctx = random_context(dimension, &mut rng);
                    let action = policy.select_action(&ctx, &mut rng).unwrap();
                    policy.update(&ctx, action, 0.5).unwrap();
                }
                let ctx = random_context(dimension, &mut rng);
                b.iter(|| policy.select_action(&ctx, &mut rng).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("linucb_update");
    for &dimension in &[10usize, 20] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("d{dimension}")),
            &dimension,
            |b, &dimension| {
                let mut rng = StdRng::seed_from_u64(2);
                let mut policy = LinUcb::new(LinUcbConfig::new(dimension, 20)).unwrap();
                let ctx = random_context(dimension, &mut rng);
                b.iter(|| {
                    policy
                        .update(&ctx, p2b_bandit::Action::new(3), 1.0)
                        .unwrap();
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_select_action, bench_update);
criterion_main!(benches);
