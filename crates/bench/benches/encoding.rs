//! Micro-benchmarks of the encoding path: quantization, k-means fitting and
//! per-context encoding at the paper's code-space sizes (k = 2⁵ … 2¹⁰).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2b_encoding::{Encoder, KMeansConfig, KMeansEncoder, Quantizer};
use p2b_linalg::Vector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn corpus(dimension: usize, size: usize, rng: &mut StdRng) -> Vec<Vector> {
    (0..size)
        .map(|_| {
            let raw: Vec<f64> = (0..dimension).map(|_| rng.gen::<f64>()).collect();
            Vector::from(raw).normalized_l1().expect("non-empty")
        })
        .collect()
}

fn bench_quantize(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let quantizer = Quantizer::new(1).unwrap();
    let contexts = corpus(10, 64, &mut rng);
    c.bench_function("quantize_d10_q1", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % contexts.len();
            quantizer.quantize(&contexts[i]).unwrap()
        });
    });
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans_encode");
    for &num_codes in &[32usize, 128, 1024] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k{num_codes}")),
            &num_codes,
            |b, &num_codes| {
                let mut rng = StdRng::seed_from_u64(2);
                let data = corpus(10, num_codes.max(512) * 2, &mut rng);
                let encoder = KMeansEncoder::fit(
                    &data,
                    KMeansConfig::new(num_codes).with_iterations(10),
                    &mut rng,
                )
                .unwrap();
                let probe = &data[0];
                b.iter(|| encoder.encode(probe).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans_fit");
    group.sample_size(10);
    for &num_codes in &[32usize, 128] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k{num_codes}")),
            &num_codes,
            |b, &num_codes| {
                let mut rng = StdRng::seed_from_u64(3);
                let data = corpus(10, 2048, &mut rng);
                b.iter(|| {
                    KMeansEncoder::fit(
                        &data,
                        KMeansConfig::new(num_codes).with_iterations(10),
                        &mut rng,
                    )
                    .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_quantize, bench_encode, bench_fit);
criterion_main!(benches);
