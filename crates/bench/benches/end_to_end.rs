//! End-to-end benchmark: one full P2B user session (warm-start, T local
//! interactions, randomized reporting) plus the server-side shuffling round.

use criterion::{criterion_group, criterion_main, Criterion};
use p2b_core::{P2bConfig, P2bSystem};
use p2b_encoding::{KMeansConfig, KMeansEncoder};
use p2b_linalg::Vector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn simplex_context(dimension: usize, rng: &mut StdRng) -> Vector {
    let raw: Vec<f64> = (0..dimension).map(|_| rng.gen::<f64>()).collect();
    Vector::from(raw).normalized_l1().expect("non-empty")
}

fn build_system(dimension: usize, actions: usize, codes: usize, rng: &mut StdRng) -> P2bSystem {
    let corpus: Vec<Vector> = (0..codes * 4)
        .map(|_| simplex_context(dimension, rng))
        .collect();
    let encoder =
        KMeansEncoder::fit(&corpus, KMeansConfig::new(codes).with_iterations(10), rng).unwrap();
    P2bSystem::new(
        P2bConfig::new(dimension, actions).with_shuffler_threshold(2),
        Arc::new(encoder),
    )
    .unwrap()
}

fn bench_user_session(c: &mut Criterion) {
    c.bench_function("p2b_user_session_d10_a20_t10", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let mut system = build_system(10, 20, 128, &mut rng);
        b.iter(|| {
            let mut agent = system.make_agent(&mut rng).unwrap();
            for _ in 0..10 {
                let ctx = simplex_context(10, &mut rng);
                let action = agent.select_action(&ctx, &mut rng).unwrap();
                let reward = if action.index() % 2 == 0 { 1.0 } else { 0.0 };
                agent
                    .observe_reward(&ctx, action, reward, &mut rng)
                    .unwrap();
            }
            system.collect_from(&mut agent);
        });
    });
}

fn bench_flush_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("p2b_flush_round");
    group.sample_size(20);
    group.bench_function("500_pending_reports", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter_batched(
            || {
                let mut system = build_system(10, 20, 32, &mut rng);
                let mut fill_rng = StdRng::seed_from_u64(3);
                for _ in 0..50 {
                    let mut agent = system.make_agent(&mut fill_rng).unwrap();
                    for _ in 0..10 {
                        let ctx = simplex_context(10, &mut fill_rng);
                        let action = agent.select_action(&ctx, &mut fill_rng).unwrap();
                        agent
                            .observe_reward(&ctx, action, 1.0, &mut fill_rng)
                            .unwrap();
                    }
                    system.collect_from(&mut agent);
                }
                system
            },
            |mut system| system.flush_round(&mut StdRng::seed_from_u64(4)).unwrap(),
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_user_session, bench_flush_round);
criterion_main!(benches);
