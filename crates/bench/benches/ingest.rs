//! Micro-benchmarks of central-model batch ingestion: the sequential
//! per-report path against the coalescing sufficient-statistics path, at
//! the code-reuse levels produced by crowd-blending thresholds; plus the
//! model-level update path (per-update arena sync vs batch-deferred
//! scratch sync) underneath the server.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use p2b_bandit::{Action, CoalescedUpdate, ContextualPolicy, IngestScratch, LinUcb, LinUcbConfig};
use p2b_core::{CentralServer, P2bConfig};
use p2b_encoding::{Encoder, KMeansConfig, KMeansEncoder};
use p2b_linalg::Vector;
use p2b_shuffler::{EncodedReport, RawReport, ShuffledBatch, Shuffler, ShufflerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const DIMENSION: usize = 16;
const ACTIONS: usize = 10;
const CODES: usize = 32;
const BATCH: usize = 1_024;

fn encoder() -> Arc<dyn Encoder> {
    let mut rng = StdRng::seed_from_u64(3);
    let corpus: Vec<Vector> = (0..CODES * 8)
        .map(|i| {
            let mut raw = vec![0.05; DIMENSION];
            raw[i % DIMENSION] = 1.0 + 0.05 * ((i / DIMENSION) % 5) as f64;
            Vector::from(raw).normalized_l1().expect("non-empty")
        })
        .collect();
    Arc::new(
        KMeansEncoder::fit(
            &corpus,
            KMeansConfig::new(CODES).with_iterations(8),
            &mut rng,
        )
        .expect("corpus is larger than k"),
    )
}

/// One shuffled batch over `codes` distinct codes: reuse = BATCH / (codes·A).
fn batch(codes: usize) -> ShuffledBatch {
    let shuffler = Shuffler::new(ShufflerConfig::new(1)).expect("threshold 1 is valid");
    let mut rng = StdRng::seed_from_u64(17);
    let raw: Vec<RawReport> = (0..BATCH)
        .map(|i| {
            RawReport::with_timestamp(
                "bench",
                i as u64,
                EncodedReport::new(
                    rng.gen_range(0..codes),
                    rng.gen_range(0..ACTIONS),
                    f64::from(rng.gen_range(0..2u8)),
                )
                .expect("rewards 0/1 are valid"),
            )
        })
        .collect();
    shuffler.process(raw, &mut rng)
}

fn bench_ingest(c: &mut Criterion) {
    let encoder = encoder();
    let mut group = c.benchmark_group("central_ingest");
    // 32 codes → ~3x reuse; 8 codes → ~13x reuse (the post-threshold regime).
    for &codes in &[32usize, 8] {
        let shuffled = batch(codes);
        // Each iteration folds one batch AND assembles the epoch snapshot:
        // assembly synchronizes with every ingest shard, so the timing
        // covers the actual model work, not just the dispatch.
        group.bench_with_input(
            BenchmarkId::new("sequential", format!("codes{codes}")),
            &shuffled,
            |b, shuffled| {
                let config = P2bConfig::new(DIMENSION, ACTIONS);
                let mut server = CentralServer::new(&config, Arc::clone(&encoder)).unwrap();
                b.iter(|| {
                    server.ingest_batch(shuffled).unwrap();
                    server.model().unwrap().observations()
                });
            },
        );
        for &shards in &[1usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("coalesced_s{shards}"), format!("codes{codes}")),
                &shuffled,
                |b, shuffled| {
                    let config = P2bConfig::new(DIMENSION, ACTIONS).with_ingest_shards(shards);
                    let mut server = CentralServer::new(&config, Arc::clone(&encoder)).unwrap();
                    b.iter(|| {
                        server.ingest_batch_coalesced(shuffled).unwrap();
                        server.model().unwrap().observations()
                    });
                },
            );
        }
    }
    group.finish();
}

/// One coalesced batch at a model shape for the update-path benchmark.
fn update_batch(dimension: usize, actions: usize, len: usize) -> Vec<CoalescedUpdate> {
    let mut rng = StdRng::seed_from_u64(29);
    (0..len)
        .map(|_| {
            let raw: Vec<f64> = (0..dimension).map(|_| rng.gen_range(0.0f64..1.0)).collect();
            let context = Vector::from(raw).normalized_l1().expect("non-empty");
            let count = rng.gen_range(1u64..10);
            let reward_sum = rng.gen_range(0.0..=count as f64);
            CoalescedUpdate::new(
                context,
                Action::new(rng.gen_range(0..actions)),
                count,
                reward_sum,
            )
            .expect("generated updates are well-formed")
        })
        .collect()
}

/// The model-level update path underneath the server: each iteration folds
/// one coalesced batch into a fresh model, either through the reference
/// per-update arena sync or the scratch path that defers the theta solve
/// and arena scatter to once per touched arm per batch. Shapes span the
/// native 10-arm stream and the wide 32-arm regime where the deferred sync
/// pays the most.
fn bench_update_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_update");
    for &(dimension, actions) in &[(DIMENSION, ACTIONS), (DIMENSION, 32usize)] {
        let updates = update_batch(dimension, actions, BATCH);
        let shape = format!("d{dimension}a{actions}");
        group.bench_with_input(
            BenchmarkId::new("reference", &shape),
            &updates,
            |b, updates| {
                b.iter_batched(
                    || LinUcb::new(LinUcbConfig::new(dimension, actions)).unwrap(),
                    |mut model| {
                        model.update_batch(updates).unwrap();
                        model.observations()
                    },
                    BatchSize::SmallInput,
                );
            },
        );
        group.bench_with_input(
            BenchmarkId::new("scratch", &shape),
            &updates,
            |b, updates| {
                let mut scratch = IngestScratch::new();
                b.iter_batched(
                    || LinUcb::new(LinUcbConfig::new(dimension, actions)).unwrap(),
                    |mut model| {
                        model.update_batch_with(updates, &mut scratch).unwrap();
                        model.observations()
                    },
                    BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ingest, bench_update_path);
criterion_main!(benches);
