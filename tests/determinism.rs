//! Golden regression suite for the end-to-end P2B pipeline.
//!
//! Every future scaling refactor (sharding, batching, async) must leave the
//! seeded behavior of the system bit-for-bit unchanged unless the change is
//! deliberate — in which case the golden values below are updated in the
//! same commit, making behavioral drift visible in review.
//!
//! The scenario runs the full pipeline — k-means encoder fit, warm agents
//! with randomized reporting, shuffler rounds with crowd-blending
//! thresholds, central LinUCB updates — and digests it into integers and
//! `f64` bit patterns, so equality below means byte-identical behavior.

use p2b::core::{P2bConfig, P2bSystem, RoundStats};
use p2b::encoding::{KMeansConfig, KMeansEncoder};
use p2b::linalg::Vector;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Seed for the encoder fit and the simulation stream.
const SCENARIO_SEED: u64 = 7;
/// Agents per collection round.
const AGENTS_PER_ROUND: usize = 20;
/// Local interactions per agent before its reports are collected.
const INTERACTIONS_PER_AGENT: usize = 4;
/// Shuffling rounds.
const ROUNDS: usize = 3;

/// Everything the scenario observes, reduced to exactly comparable values.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Digest {
    round_stats: Vec<RoundStats>,
    cumulative_reward_bits: u64,
    ingested_reports: u64,
    epsilon_bits: u64,
    delta_bits: u64,
}

/// A deterministic 4-cluster corpus: 24 near-one-hot vectors per cluster
/// with a small index-dependent perturbation so the clusters are
/// well-separated but not degenerate.
fn corpus() -> Vec<Vector> {
    (0..96)
        .map(|i| {
            let cluster = i % 4;
            let mut raw = vec![0.05 + 0.001 * (i / 4) as f64; 4];
            raw[cluster] = 1.0;
            Vector::from(raw).normalized_l1().expect("non-empty vector")
        })
        .collect()
}

/// One cluster-representative context per cluster.
fn contexts() -> Vec<Vector> {
    (0..4)
        .map(|cluster| {
            let mut raw = vec![0.05; 4];
            raw[cluster] = 1.0;
            Vector::from(raw).normalized_l1().expect("non-empty vector")
        })
        .collect()
}

fn run_scenario() -> Digest {
    let mut rng = StdRng::seed_from_u64(SCENARIO_SEED);
    let encoder = Arc::new(
        KMeansEncoder::fit(&corpus(), KMeansConfig::new(4), &mut rng)
            .expect("corpus is larger than k and dimensionally consistent"),
    );
    let config = P2bConfig::new(4, 3)
        .with_local_interactions(2)
        .with_shuffler_threshold(3);
    let mut system = P2bSystem::new(config, encoder).expect("valid configuration");

    let contexts = contexts();
    let mut cumulative_reward = 0.0f64;
    let mut round_stats = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        for agent_index in 0..AGENTS_PER_ROUND {
            let mut agent = system.make_agent(&mut rng).expect("agent construction");
            let cluster = agent_index % contexts.len();
            let ctx = &contexts[cluster];
            for _ in 0..INTERACTIONS_PER_AGENT {
                let action = agent.select_action(ctx, &mut rng).expect("selection");
                // Deterministic reward rule: the action matching the
                // generating cluster pays (modulo the action count).
                let reward = if action.index() == cluster % 3 {
                    1.0
                } else {
                    0.0
                };
                cumulative_reward += reward;
                agent
                    .observe_reward(ctx, action, reward, &mut rng)
                    .expect("reward in range");
            }
            system.collect_from(&mut agent);
        }
        round_stats.push(system.flush_round(&mut rng).expect("flush succeeds"));
    }

    let guarantee = system.privacy_guarantee().expect("valid configuration");
    Digest {
        round_stats,
        cumulative_reward_bits: cumulative_reward.to_bits(),
        ingested_reports: system.server().ingested_reports(),
        epsilon_bits: guarantee.epsilon().to_bits(),
        delta_bits: guarantee.delta().to_bits(),
    }
}

/// The committed golden digest of `run_scenario`. Update deliberately, never
/// incidentally: a mismatch means the seeded pipeline behavior changed.
fn golden() -> Digest {
    Digest {
        round_stats: vec![
            RoundStats {
                received: 23,
                released: 23,
                dropped: 0,
                accepted: 23,
            },
            RoundStats {
                received: 18,
                released: 16,
                dropped: 2,
                accepted: 16,
            },
            RoundStats {
                received: 24,
                released: 24,
                dropped: 0,
                accepted: 24,
            },
        ],
        // 218 successes over 240 interactions.
        cumulative_reward_bits: 218.0f64.to_bits(),
        ingested_reports: 63,
        // ε = ln 2 (Equation 3 with p = 0.5, ε̄ = 0).
        epsilon_bits: std::f64::consts::LN_2.to_bits(),
        // δ = e^{-Ω·l·(1-p)²} = e^{-0.075} ≈ 0.927743 at Ω = 0.1, l = 3.
        delta_bits: 0x3FED_B013_1B9B_7607,
    }
}

#[test]
fn seeded_run_matches_committed_golden_digest() {
    let digest = run_scenario();
    assert_eq!(
        digest,
        golden(),
        "seeded end-to-end behavior drifted; if intentional, update golden() \
         in the same commit\nactual: {digest:#?}"
    );
}

#[test]
fn scenario_is_bitwise_reproducible() {
    assert_eq!(run_scenario(), run_scenario());
}

#[test]
fn privacy_guarantee_is_closed_form() {
    // The (ε, δ) digest values are not arbitrary constants: ε must equal the
    // paper's Equation 3 at p = 1/2 exactly, and δ the Gehrke et al. bound
    // e^{-Ω·l·(1-p)²} at Ω = 0.1, l = 3.
    let digest = run_scenario();
    assert_eq!(digest.epsilon_bits, std::f64::consts::LN_2.to_bits());
    // Same arithmetic order as `amplified_delta`, so the comparison is exact.
    let q = 1.0 - 0.5f64;
    let expected_delta = (-0.1f64 * 3.0 * q * q).exp();
    assert_eq!(digest.delta_bits, expected_delta.to_bits());
}

#[test]
fn conservation_laws_hold_every_round() {
    let digest = run_scenario();
    let mut total_accepted = 0;
    for stats in &digest.round_stats {
        assert_eq!(stats.received, stats.released + stats.dropped);
        assert_eq!(stats.accepted, stats.released as u64);
        total_accepted += stats.accepted;
    }
    assert_eq!(total_accepted, digest.ingested_reports);
}
