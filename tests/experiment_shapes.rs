//! Integration tests asserting the *qualitative shapes* of the paper's
//! results at reduced scale: who wins, in which direction the curves move.
//! Absolute numbers differ from the paper (synthetic substrates, smaller
//! populations), but the orderings these tests pin down are the ones the
//! paper's figures report.

use p2b::datasets::{MultiLabelDataset, SyntheticConfig};
use p2b::sim::{
    run_logged_experiment, run_synthetic_population, LoggedExperimentConfig, PopulationConfig,
    Regime,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Figure 4 shape: with a growing population, the warm regimes clearly beat
/// the cold baseline, whose per-user horizon (T = 10) is too short to learn.
///
/// The environment uses a stronger reward scale than the paper's β = 0.1 so
/// that the ordering is statistically unambiguous at this reduced population
/// size; the full-scale sweep lives in the `fig4_synthetic` bench binary.
#[test]
fn synthetic_benchmark_warm_regimes_beat_cold() {
    let env = SyntheticConfig::new(6, 10)
        .with_beta(0.8)
        .with_noise_variance(0.0025);
    let outcome = |regime| {
        run_synthetic_population(
            env,
            PopulationConfig::new(regime, 1_000)
                .with_num_codes(64)
                .with_encoder_corpus_size(512)
                .with_shuffler_threshold(2)
                .with_seed(5),
        )
        .unwrap()
        .average_reward
    };
    let cold = outcome(Regime::Cold);
    let warm_np = outcome(Regime::WarmNonPrivate);
    let warm_p = outcome(Regime::WarmPrivate);
    assert!(
        warm_np > cold,
        "non-private warm ({warm_np:.4}) must beat cold ({cold:.4})"
    );
    assert!(
        warm_p > cold,
        "private warm ({warm_p:.4}) must beat cold ({cold:.4})"
    );
}

/// Figure 4 shape along the population axis: the warm-private regime improves
/// (or at least does not get worse) as more users contribute reports.
#[test]
fn private_regime_improves_with_population_size() {
    // Strong-signal environment so the population effect dominates the
    // sampling noise of the smaller run.
    let env = SyntheticConfig::new(5, 8)
        .with_beta(0.8)
        .with_noise_variance(0.0025);
    let run = |users| {
        run_synthetic_population(
            env,
            PopulationConfig::new(Regime::WarmPrivate, users)
                .with_num_codes(32)
                .with_encoder_corpus_size(256)
                .with_shuffler_threshold(2)
                .with_seed(9),
        )
        .unwrap()
        .average_reward
    };
    let small = run(100);
    let large = run(1_000);
    assert!(
        large > small - 0.01,
        "large population ({large:.4}) should not be worse than small ({small:.4})"
    );
}

/// Figure 6 shape: on clustered multi-label data the warm regimes beat cold,
/// and the private/non-private accuracy gap stays small (the paper reports
/// 2.6 – 3.6 percentage points; we allow a loose bound at this tiny scale).
#[test]
fn multilabel_accuracy_ordering_and_gap() {
    let mut rng = StdRng::seed_from_u64(21);
    let num_agents = 100;
    let per_agent = 60;
    let dataset = MultiLabelDataset::textmining_like(num_agents * per_agent, &mut rng).unwrap();
    let agents = dataset
        .split_agents(num_agents, per_agent, &mut rng)
        .unwrap();

    let outcome = |regime| {
        run_logged_experiment(
            &agents,
            LoggedExperimentConfig::new(regime, dataset.context_dimension(), dataset.num_labels())
                .with_num_codes(32)
                .with_shuffler_threshold(2)
                .with_seed(22),
        )
        .unwrap()
        .average_reward
    };
    let cold = outcome(Regime::Cold);
    let warm_np = outcome(Regime::WarmNonPrivate);
    let warm_p = outcome(Regime::WarmPrivate);

    assert!(
        warm_np > cold && warm_p > cold,
        "warm regimes (np {warm_np:.3}, p {warm_p:.3}) must beat cold ({cold:.3})"
    );
    // The paper reports a 2.6 – 3.6 percentage-point gap at full scale
    // (thousands of contributing agents); at this reduced scale the private
    // model sees far fewer reports, so we only pin down that the gap stays
    // bounded rather than matching the paper's value exactly.
    assert!(
        warm_np - warm_p < 0.35,
        "private/non-private gap should stay bounded, got np {warm_np:.3} vs p {warm_p:.3}"
    );
}

/// ε is controlled entirely by p: replaying the experiment with a smaller
/// participation probability yields a strictly smaller reported ε.
#[test]
fn reported_epsilon_tracks_participation() {
    let env = SyntheticConfig::new(4, 5);
    let run = |p| {
        let mut config = PopulationConfig::new(Regime::WarmPrivate, 40)
            .with_num_codes(16)
            .with_encoder_corpus_size(128)
            .with_shuffler_threshold(2)
            .with_seed(30);
        config.participation = p;
        run_synthetic_population(env, config)
            .unwrap()
            .epsilon
            .unwrap()
    };
    let low = run(0.25);
    let high = run(0.75);
    assert!(
        low < high,
        "epsilon at p=0.25 ({low}) must be below p=0.75 ({high})"
    );
    assert!((run(0.5) - std::f64::consts::LN_2).abs() < 1e-12);
}
