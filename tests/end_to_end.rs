//! Cross-crate integration tests: the full P2B pipeline, from raw contexts
//! through encoding, randomized reporting, shuffling and central-model
//! updates, plus the privacy invariants the paper's analysis relies on.

use p2b::bandit::ContextualPolicy;
use p2b::core::{CodeRepresentation, P2bConfig, P2bSystem};
use p2b::encoding::{Encoder, KMeansConfig, KMeansEncoder};
use p2b::linalg::Vector;
use p2b::privacy::CrowdBlending;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn simplex_context(dimension: usize, rng: &mut StdRng) -> Vector {
    let raw: Vec<f64> = (0..dimension).map(|_| rng.gen::<f64>()).collect();
    Vector::from(raw).normalized_l1().expect("non-empty")
}

fn clustered_context(cluster: usize, dimension: usize, rng: &mut StdRng) -> Vector {
    let mut raw = vec![0.05; dimension];
    raw[cluster % dimension] = 1.0 + rng.gen_range(-0.05..0.05);
    Vector::from(raw).normalized_l1().expect("non-empty")
}

fn fit_encoder(dimension: usize, codes: usize, rng: &mut StdRng) -> Arc<dyn Encoder> {
    let corpus: Vec<Vector> = (0..codes * 16)
        .map(|i| clustered_context(i % dimension, dimension, rng))
        .collect();
    Arc::new(KMeansEncoder::fit(&corpus, KMeansConfig::new(codes), rng).expect("encoder fits"))
}

#[test]
fn full_pipeline_improves_fresh_agents_and_respects_crowd_blending() {
    let dimension = 6;
    let num_actions = 6;
    let mut rng = StdRng::seed_from_u64(11);
    let encoder = fit_encoder(dimension, 6, &mut rng);

    let config = P2bConfig::new(dimension, num_actions)
        .with_local_interactions(2)
        .with_shuffler_threshold(3);
    let mut system = P2bSystem::new(config, encoder).expect("system builds");

    // The optimal action for a context is the index of its dominant feature.
    let optimal = |ctx: &Vector| ctx.argmax().unwrap() % num_actions;

    // Phase 1: a training population teaches the central model.
    for user in 0..150 {
        let mut agent = system.make_agent(&mut rng).unwrap();
        for _ in 0..4 {
            let ctx = clustered_context(user % dimension, dimension, &mut rng);
            let action = agent.select_action(&ctx, &mut rng).unwrap();
            let reward = if action.index() == optimal(&ctx) {
                1.0
            } else {
                0.0
            };
            agent
                .observe_reward(&ctx, action, reward, &mut rng)
                .unwrap();
        }
        system.collect_from(&mut agent);
        if system.pending_reports() >= 60 {
            let (_, batch) = system.flush_round_with_batch(&mut rng).unwrap();
            // Crowd-blending: every released code appears at least l times.
            let codes: Vec<usize> = batch.reports().iter().map(|r| r.code()).collect();
            let crowd = CrowdBlending::exact(3).unwrap();
            assert!(crowd.is_satisfied_by(&codes));
        }
    }
    system.flush_round(&mut rng).unwrap();
    assert!(
        system.server().ingested_reports() > 0,
        "server saw no reports"
    );

    // Phase 2: fresh warm and cold agents are evaluated on a short horizon.
    let evaluate = |agent: &mut p2b::core::LocalAgent, rng: &mut StdRng| -> f64 {
        let mut total = 0.0;
        let mut count = 0.0;
        for cluster in 0..dimension {
            for _ in 0..5 {
                let ctx = clustered_context(cluster, dimension, rng);
                let action = agent.select_action(&ctx, rng).unwrap();
                if action.index() == optimal(&ctx) {
                    total += 1.0;
                }
                count += 1.0;
                // Probes feed a constant zero reward: the update still
                // tightens LinUCB's confidence bounds (and consumes
                // reporting opportunities), but no action is preferentially
                // reinforced, so the ranking under comparison is unchanged.
                agent.observe_reward(&ctx, action, 0.0, rng).ok();
            }
        }
        total / count
    };

    let mut warm = system.make_agent(&mut rng).unwrap();
    let mut cold = system.make_cold_agent().unwrap();
    let warm_score = evaluate(&mut warm, &mut rng);
    let cold_score = evaluate(&mut cold, &mut rng);
    assert!(
        warm_score > cold_score,
        "warm-started agent ({warm_score:.3}) should beat the cold agent ({cold_score:.3})"
    );
}

#[test]
fn privacy_guarantee_matches_the_closed_form_for_several_participations() {
    let mut rng = StdRng::seed_from_u64(12);
    let encoder = fit_encoder(4, 4, &mut rng);
    for &(p, expected_epsilon) in &[
        (0.25_f64, (0.25 * (1.75 / 0.75) + 0.75_f64).ln()),
        (0.5, std::f64::consts::LN_2),
        (0.75, (0.75 * (1.25 / 0.25) + 0.25_f64).ln()),
    ] {
        let config = P2bConfig::new(4, 3).with_participation(p);
        let system = P2bSystem::new(config, Arc::clone(&encoder)).unwrap();
        let guarantee = system.privacy_guarantee().unwrap();
        assert!(
            (guarantee.epsilon() - expected_epsilon).abs() < 1e-12,
            "p = {p}: epsilon {} vs expected {expected_epsilon}",
            guarantee.epsilon()
        );
    }
}

#[test]
fn agent_privacy_spend_composes_linearly_with_reporting_opportunities() {
    let mut rng = StdRng::seed_from_u64(13);
    let encoder = fit_encoder(4, 4, &mut rng);
    let config = P2bConfig::new(4, 3).with_local_interactions(5);
    let mut system = P2bSystem::new(config, encoder).unwrap();
    let mut agent = system.make_agent(&mut rng).unwrap();
    for _ in 0..50 {
        let ctx = simplex_context(4, &mut rng);
        let action = agent.select_action(&ctx, &mut rng).unwrap();
        agent.observe_reward(&ctx, action, 0.5, &mut rng).unwrap();
    }
    // 50 interactions / T = 5 → 10 opportunities → ε = 10 · ln 2.
    let spent = agent.privacy_spent();
    assert!((spent.epsilon() - 10.0 * std::f64::consts::LN_2).abs() < 1e-9);
}

#[test]
fn onehot_representation_runs_end_to_end() {
    let mut rng = StdRng::seed_from_u64(14);
    let encoder = fit_encoder(5, 8, &mut rng);
    let config = P2bConfig::new(5, 4)
        .with_code_representation(CodeRepresentation::OneHot)
        .with_local_interactions(2)
        .with_shuffler_threshold(2);
    let mut system = P2bSystem::new(config, encoder).unwrap();
    assert_eq!(system.server_mut().model().unwrap().context_dimension(), 8);

    for _ in 0..30 {
        let mut agent = system.make_agent(&mut rng).unwrap();
        for _ in 0..4 {
            let ctx = simplex_context(5, &mut rng);
            let action = agent.select_action(&ctx, &mut rng).unwrap();
            agent.observe_reward(&ctx, action, 1.0, &mut rng).unwrap();
        }
        system.collect_from(&mut agent);
    }
    let stats = system.flush_round(&mut rng).unwrap();
    assert_eq!(stats.received, stats.released + stats.dropped);
}

#[test]
fn anonymized_batches_never_contain_agent_identifiers() {
    let mut rng = StdRng::seed_from_u64(15);
    let encoder = fit_encoder(4, 4, &mut rng);
    let config = P2bConfig::new(4, 3)
        .with_local_interactions(1)
        .with_shuffler_threshold(1);
    let mut system = P2bSystem::new(config, encoder).unwrap();
    for _ in 0..20 {
        let mut agent = system.make_agent(&mut rng).unwrap();
        let ctx = simplex_context(4, &mut rng);
        let action = agent.select_action(&ctx, &mut rng).unwrap();
        agent.observe_reward(&ctx, action, 1.0, &mut rng).unwrap();
        system.collect_from(&mut agent);
    }
    let (_, batch) = system.flush_round_with_batch(&mut rng).unwrap();
    let debug_dump = format!("{batch:?}");
    assert!(
        !debug_dump.contains("agent-"),
        "released batch leaks agent identifiers"
    );
}
