//! Umbrella crate for the Privacy-Preserving Bandits (P2B) reproduction.
//!
//! This crate re-exports the workspace's sub-crates under stable module
//! names so downstream users can depend on a single crate:
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`core`] | the P2B system: local agents, randomized reporting, central server |
//! | [`bandit`] | LinUCB and the baseline contextual-bandit policies |
//! | [`encoding`] | fixed-precision contexts, k-means / grid / LSH encoders |
//! | [`privacy`] | (ε, δ)-DP, crowd-blending, amplification by pre-sampling |
//! | [`shuffler`] | the ESA-style anonymize / shuffle / threshold stage: synchronous, single-lane and sharded-engine shapes |
//! | [`datasets`] | synthetic preference, multi-label and Criteo-like workloads |
//! | [`sim`] | the multi-agent experiment harness behind the paper's figures |
//! | [`experiments`] | the config-driven scenario matrix reproducing the utility-vs-privacy figures |
//! | [`linalg`] | the small dense linear-algebra substrate |
//!
//! # Quickstart
//!
//! ```
//! use p2b::core::{P2bConfig, P2bSystem};
//! use p2b::encoding::{KMeansConfig, KMeansEncoder};
//! use p2b::linalg::Vector;
//! use rand::SeedableRng;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let corpus: Vec<Vector> = (0..64)
//!     .map(|i| Vector::from(vec![(i % 4) as f64 + 0.5, 1.0, 2.0]).normalized_l1().unwrap())
//!     .collect();
//! let encoder = Arc::new(KMeansEncoder::fit(&corpus, KMeansConfig::new(4), &mut rng)?);
//! let system = P2bSystem::new(P2bConfig::new(3, 5), encoder)?;
//! println!("privacy guarantee: {}", system.privacy_guarantee()?);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use p2b_bandit as bandit;
pub use p2b_core as core;
pub use p2b_datasets as datasets;
pub use p2b_encoding as encoding;
pub use p2b_experiments as experiments;
pub use p2b_linalg as linalg;
pub use p2b_privacy as privacy;
pub use p2b_shuffler as shuffler;
pub use p2b_sim as sim;
